// util::FaultInjector: deterministic injection plans (one-shot, every-Nth,
// probability-p under a fixed seed) and the LINSYS_FAULT_POINT contract.
#include "src/util/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/panic.h"

namespace util {
namespace {

// Every test starts and ends with a clean global registry so arming in one
// test can never leak faults into another (the registry is process-global).
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// Drives `hits` hits against `site` and records which ones fired.
std::vector<bool> Drive(const std::string& site, int hits) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(hits));
  for (int i = 0; i < hits; ++i) {
    bool f = false;
    try {
      LINSYS_FAULT_POINT(site.c_str());
    } catch (const PanicError&) {
      f = true;
    }
    fired.push_back(f);
  }
  return fired;
}

TEST_F(FaultInjectorTest, DisarmedSiteIsFree) {
  EXPECT_FALSE(FaultInjector::Global().armed());
  // No plan anywhere: the macro must not throw and must not count.
  EXPECT_NO_THROW(LINSYS_FAULT_POINT("nothing.armed"));
  EXPECT_EQ(FaultInjector::Global().StatsFor("nothing.armed").hits, 0u);
}

TEST_F(FaultInjectorTest, OneShotFiresExactlyOnceThenDisarms) {
  FaultInjector::Global().ArmOneShot("site.a", PanicKind::kBoundsCheck);
  EXPECT_TRUE(FaultInjector::Global().armed());

  const std::vector<bool> fired = Drive("site.a", 10);
  EXPECT_TRUE(fired[0]);
  for (int i = 1; i < 10; ++i) {
    EXPECT_FALSE(fired[i]) << "one-shot fired again at hit " << i;
  }
  EXPECT_FALSE(FaultInjector::Global().armed());
  const InjectSiteStats stats = FaultInjector::Global().StatsFor("site.a");
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultInjectorTest, OneShotCarriesTheRequestedPanicKind) {
  FaultInjector::Global().ArmOneShot("site.kind", PanicKind::kUseAfterMove);
  try {
    FaultInjector::Global().Hit("site.kind");
    FAIL() << "expected an injected panic";
  } catch (const PanicError& e) {
    EXPECT_EQ(e.kind(), PanicKind::kUseAfterMove);
  }
}

TEST_F(FaultInjectorTest, EveryNthFiresOnExactMultiples) {
  FaultInjector::Global().ArmEveryNth("site.nth", 5);
  const std::vector<bool> fired = Drive("site.nth", 20);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fired[i], (i + 1) % 5 == 0) << "at hit " << (i + 1);
  }
  const InjectSiteStats stats = FaultInjector::Global().StatsFor("site.nth");
  EXPECT_EQ(stats.hits, 20u);
  EXPECT_EQ(stats.fires, 4u);
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicUnderAFixedSeed) {
  auto run = [] {
    FaultInjector::Global().Reset();
    FaultInjector::Global().Seed(42);
    FaultInjector::Global().ArmProbability("site.p", 0.1);
    return Drive("site.p", 1000);
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second) << "same seed must fire at the same hits";

  std::size_t fires = 0;
  for (bool f : first) {
    fires += f ? 1 : 0;
  }
  // 1000 draws at p=0.1: the exact count is seed-determined; just pin it to
  // a sane band so a broken RNG (always/never firing) is caught.
  EXPECT_GT(fires, 50u);
  EXPECT_LT(fires, 200u);
}

TEST_F(FaultInjectorTest, DifferentSeedsGiveDifferentFiringPatterns) {
  FaultInjector::Global().Seed(1);
  FaultInjector::Global().ArmProbability("site.p", 0.2);
  const std::vector<bool> a = Drive("site.p", 500);
  FaultInjector::Global().Reset();
  FaultInjector::Global().Seed(2);
  FaultInjector::Global().ArmProbability("site.p", 0.2);
  const std::vector<bool> b = Drive("site.p", 500);
  EXPECT_NE(a, b);
}

TEST_F(FaultInjectorTest, SitesAreIndependent) {
  FaultInjector::Global().ArmEveryNth("site.x", 2);
  FaultInjector::Global().ArmEveryNth("site.y", 3);
  Drive("site.x", 6);
  Drive("site.y", 6);
  EXPECT_EQ(FaultInjector::Global().StatsFor("site.x").fires, 3u);
  EXPECT_EQ(FaultInjector::Global().StatsFor("site.y").fires, 2u);
  EXPECT_EQ(FaultInjector::Global().TotalFires(), 5u);
  EXPECT_EQ(FaultInjector::Global().ArmedSites().size(), 2u);
}

TEST_F(FaultInjectorTest, DisarmStopsFiringButKeepsStats) {
  FaultInjector::Global().ArmEveryNth("site.d", 1);
  Drive("site.d", 3);
  FaultInjector::Global().Disarm("site.d");
  EXPECT_FALSE(FaultInjector::Global().armed());
  const std::vector<bool> fired = Drive("site.d", 5);
  for (bool f : fired) {
    EXPECT_FALSE(f);
  }
  EXPECT_EQ(FaultInjector::Global().StatsFor("site.d").fires, 3u);
}

TEST_F(FaultInjectorTest, RearmRestartsTheNthCounter) {
  FaultInjector::Global().ArmEveryNth("site.r", 4);
  Drive("site.r", 3);  // 3 hits, no fire yet
  FaultInjector::Global().ArmEveryNth("site.r", 4);  // re-arm: count resets
  const std::vector<bool> fired = Drive("site.r", 4);
  EXPECT_FALSE(fired[0]);
  EXPECT_FALSE(fired[1]);
  EXPECT_FALSE(fired[2]);
  EXPECT_TRUE(fired[3]);
}

// --- Per-thread tag scoping ("<tag>/<site>" plans) -------------------------

TEST_F(FaultInjectorTest, TaggedPlanFiresOnlyOnMatchingThread) {
  FaultInjector::Global().ArmEveryNth("net.worker:2/channel.recv", 1);

  // Untagged thread: the scoped plan must not apply.
  EXPECT_NO_THROW(LINSYS_FAULT_POINT("channel.recv"));

  // Wrong tag: still no fire.
  {
    FaultInjector::ScopedThreadTag tag("net.worker:1");
    EXPECT_NO_THROW(LINSYS_FAULT_POINT("channel.recv"));
  }

  // Matching tag: every hit fires.
  {
    FaultInjector::ScopedThreadTag tag("net.worker:2");
    EXPECT_THROW(LINSYS_FAULT_POINT("channel.recv"), PanicError);
  }
  EXPECT_EQ(FaultInjector::Global().StatsFor("net.worker:2/channel.recv").fires,
            1u);
  // The plain (untagged) site never accumulated a plan or fires.
  EXPECT_EQ(FaultInjector::Global().StatsFor("channel.recv").fires, 0u);
}

TEST_F(FaultInjectorTest, TaggedAndPlainPlansCompose) {
  // Plain plan on every hit; tagged plan only for worker 0. A tagged thread
  // evaluates its scoped plan first, then falls through to the plain site.
  FaultInjector::Global().ArmEveryNth("site.both", 2);
  FaultInjector::Global().ArmEveryNth("net.worker:0/site.both", 1);

  {
    FaultInjector::ScopedThreadTag tag("net.worker:0");
    // Scoped every-1 wins on each hit before the plain every-2 can.
    EXPECT_THROW(LINSYS_FAULT_POINT("site.both"), PanicError);
    EXPECT_THROW(LINSYS_FAULT_POINT("site.both"), PanicError);
  }
  EXPECT_EQ(FaultInjector::Global().StatsFor("net.worker:0/site.both").fires,
            2u);

  // A differently-tagged thread still sees the plain plan.
  {
    FaultInjector::ScopedThreadTag tag("net.worker:1");
    const std::vector<bool> fired = Drive("site.both", 2);
    EXPECT_FALSE(fired[0]);
    EXPECT_TRUE(fired[1]);
  }
}

TEST_F(FaultInjectorTest, ScopedThreadTagRestoresPreviousTag) {
  FaultInjector::SetThreadTag("outer");
  {
    FaultInjector::ScopedThreadTag tag("inner");
    EXPECT_EQ(FaultInjector::ThreadTag(), "inner");
  }
  EXPECT_EQ(FaultInjector::ThreadTag(), "outer");
  FaultInjector::SetThreadTag("");
}

// The no-match fast path: while no tagged plan exists anywhere, a tagged
// thread's hit must not pay the scoped-key lookup — it behaves exactly like
// an untagged hit against the plain plan table. Verified behaviourally (the
// plain plan still fires identically) plus a large-N smoke run to keep the
// path exercised under the cheap-by-construction claim.
TEST_F(FaultInjectorTest, NoTaggedPlansKeepsTaggedThreadsOnPlainPath) {
  FaultInjector::Global().ArmEveryNth("site.plain", 100);
  FaultInjector::ScopedThreadTag tag("net.worker:7");
  const std::vector<bool> fired = Drive("site.plain", 300);
  std::size_t fires = 0;
  for (std::size_t i = 0; i < fired.size(); ++i) {
    if (fired[i]) {
      ++fires;
      EXPECT_EQ((i + 1) % 100, 0u) << "plain every-Nth cadence disturbed";
    }
  }
  EXPECT_EQ(fires, 3u);
  // And an unarmed site stays free on a tagged thread too.
  EXPECT_NO_THROW(LINSYS_FAULT_POINT("site.unarmed"));
  EXPECT_EQ(FaultInjector::Global().StatsFor("site.unarmed").hits, 0u);
}

TEST_F(FaultInjectorTest, ResetClearsTaggedPlans) {
  FaultInjector::Global().ArmOneShot("w:1/site.t");
  FaultInjector::Global().Reset();
  FaultInjector::ScopedThreadTag tag("w:1");
  EXPECT_NO_THROW(LINSYS_FAULT_POINT("site.t"));
}

}  // namespace
}  // namespace util
