// net::Runtime: sharded pipeline replicas, per-flow ordering across the
// descriptor handoff, fault containment per shard, and supervisor-driven
// recovery.
#include "src/net/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/operators/null_filter.h"
#include "src/net/pktgen.h"
#include "src/obs/trace.h"
#include "src/util/fault_injector.h"

namespace net {
namespace {

// Verifies, inside the pipeline, that (a) every packet of a flow arrives at
// the same worker replica and (b) per-flow sequence numbers are strictly
// increasing — the ordering guarantee RSS + FIFO channels must provide.
class OrderingCheck : public Operator {
 public:
  struct Shared {
    std::mutex mu;
    std::map<std::uint64_t, std::size_t> flow_owner;  // flow -> worker
    std::atomic<bool> affinity_violation{false};
    std::atomic<bool> ordering_violation{false};
  };

  OrderingCheck(std::size_t worker, Shared* shared)
      : worker_(worker), shared_(shared) {}

  PacketBatch Process(PacketBatch batch) override {
    for (PacketBuf& pkt : batch) {
      const std::uint64_t key = pkt.Tuple().Hash();
      const std::uint64_t seq = ReadFlowSeq(pkt);
      auto [it, inserted] = last_seq_.try_emplace(key, seq);
      if (!inserted) {
        if (seq <= it->second) {
          shared_->ordering_violation = true;
        }
        it->second = seq;
      }
      std::lock_guard<std::mutex> lock(shared_->mu);
      auto [oit, owned] = shared_->flow_owner.try_emplace(key, worker_);
      if (!owned && oit->second != worker_) {
        shared_->affinity_violation = true;
      }
    }
    return batch;
  }

  std::string_view name() const override { return "ordering-check"; }

 private:
  std::size_t worker_;
  Shared* shared_;
  std::map<std::uint64_t, std::uint64_t> last_seq_;  // per-replica state
};

TEST(Runtime, ProcessesEverythingAcrossShards) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatchSize = 32;

  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 16;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(128, 0.0, 42);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.totals.packets, kBatches * kBatchSize);
  EXPECT_EQ(stats.totals.drops, 0u);
  EXPECT_EQ(stats.totals.faults, 0u);
  EXPECT_EQ(stats.dispatch_calls, static_cast<std::uint64_t>(kBatches));
  EXPECT_GE(stats.sub_batches, stats.dispatch_calls)
      << "fan-out produces at least one sub-batch per dispatched batch";
  EXPECT_EQ(stats.workers.size(), kWorkers);
  // 128 flows over 4 shards: every shard should see traffic.
  for (const WorkerTelemetry& w : stats.workers) {
    EXPECT_GT(w.packets, 0u) << "idle shard despite 128 flows";
  }
  EXPECT_FALSE(stats.Summary().empty());
}

TEST(Runtime, PerFlowOrderingAndAffinityHoldAcrossShards) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 300;
  constexpr std::size_t kBatchSize = 16;

  OrderingCheck::Shared shared;
  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 8;
  std::vector<StageSpec> spec;
  spec.push_back({"ordering", [&shared](std::size_t worker) {
                    return std::make_unique<OrderingCheck>(worker, &shared);
                  }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(64, 0.0, 7);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  rt.Shutdown();

  EXPECT_FALSE(shared.affinity_violation.load())
      << "a flow was processed by two different shards";
  EXPECT_FALSE(shared.ordering_violation.load())
      << "per-flow sequence numbers arrived out of order";
  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.totals.packets, kBatches * kBatchSize);
  EXPECT_EQ(stats.totals.drops, 0u);
}

TEST(Runtime, FaultOnOneShardIsRecoveredWithoutStallingOthers) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 400;
  constexpr std::size_t kBatchSize = 16;

  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 16;
  std::vector<StageSpec> spec;
  // Shard 0's replica panics every 3rd batch; all other replicas are clean.
  spec.push_back({"flaky-null", [](std::size_t worker) {
                    return std::make_unique<NullFilter>(
                        worker == 0 ? 3 : 0);
                  }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(256, 0.0, 11);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  ASSERT_EQ(stats.workers.size(), kWorkers);
  const WorkerTelemetry& faulty = stats.workers[0];
  EXPECT_GE(faulty.faults, 1u) << "injected panic never fired";
  EXPECT_GE(faulty.recoveries, 1u)
      << "supervisor never recovered the faulted stage";
  EXPECT_GT(faulty.packets, 0u)
      << "the faulted shard must keep processing after recovery";
  for (std::size_t w = 1; w < kWorkers; ++w) {
    EXPECT_EQ(stats.workers[w].faults, 0u) << "fault leaked to shard " << w;
    EXPECT_EQ(stats.workers[w].drops, 0u) << "healthy shard dropped traffic";
    EXPECT_GT(stats.workers[w].packets, 0u)
        << "healthy shard " << w << " stalled";
  }
  EXPECT_GE(stats.totals.recoveries, 1u)
      << "recovery count must surface in RuntimeStats";
  // Conservation: every materialized packet either left the pipeline or was
  // accounted as a drop when its batch died with the faulting stage.
  EXPECT_EQ(stats.totals.packets + stats.totals.drops,
            kBatches * kBatchSize);
}

TEST(Runtime, DirectModeRunsWithoutDomains) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.isolated = false;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(32, 0.0, 3);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < 50; ++i) {
    rt.Dispatch(feeder.Next(8));
  }
  rt.Shutdown();
  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.totals.packets, 400u);
  EXPECT_EQ(stats.totals.faults, 0u);
}

TEST(Runtime, FlowPinningIsStable) {
  RuntimeConfig cfg;
  cfg.workers = 8;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);

  FlowSampler sampler(64, 0.0, 9);
  for (std::size_t i = 0; i < sampler.flow_count(); ++i) {
    const FiveTuple& t = sampler.FlowAt(i);
    EXPECT_EQ(rt.WorkerFor(t), rt.WorkerFor(t));
    EXPECT_LT(rt.WorkerFor(t), cfg.workers);
  }
  // Never started: construction + destruction alone must be clean.
}

TEST(Runtime, DispatchOutsideStartShutdownWindowIsRefused) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);

  FlowSampler sampler(16, 0.0, 5);
  FlowFeeder feeder(&sampler);

  // Before Start: refused, counted, nothing processed.
  EXPECT_FALSE(rt.Dispatch(feeder.Next(8)));

  rt.Start();
  EXPECT_TRUE(rt.Dispatch(feeder.Next(8)));
  rt.Shutdown();

  // After Shutdown: refused again, not a crash or a hang.
  EXPECT_FALSE(rt.Dispatch(feeder.Next(8)));
  EXPECT_FALSE(rt.Dispatch(feeder.Next(8)));

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.totals.packets, 8u);
  EXPECT_EQ(stats.rejected_dispatches, 3u);
  EXPECT_EQ(stats.dispatch_calls, 1u);
}

TEST(Runtime, StartAfterShutdownIsANoOp) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();
  rt.Shutdown();
  rt.Start();  // terminal shutdown: must not respawn threads

  FlowSampler sampler(8, 0.0, 2);
  FlowFeeder feeder(&sampler);
  EXPECT_FALSE(rt.Dispatch(feeder.Next(4)));
  EXPECT_EQ(rt.Stats().totals.packets, 0u);
}

TEST(Runtime, ConcurrentStartAndShutdownAreSerialized) {
  for (int round = 0; round < 10; ++round) {
    RuntimeConfig cfg;
    cfg.workers = 2;
    std::vector<StageSpec> spec;
    spec.push_back(
        {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
    Runtime rt(cfg, spec);

    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&rt] { rt.Start(); });
      threads.emplace_back([&rt] { rt.Shutdown(); });
    }
    for (auto& t : threads) {
      t.join();
    }
    rt.Shutdown();  // whatever interleaving happened, this must be clean
    EXPECT_EQ(rt.Stats().totals.faults, 0u);
  }
}

// Regression for the stats-aggregation race: Stats() and registry scrapes
// taken *while workers are processing* must be consistent snapshots —
// counters monotone across reads, histogram bucket sums equal to their
// counts — and the final post-shutdown totals must conserve packets.
TEST(Runtime, ScrapeUnderLoadIsConsistent) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 400;
  constexpr std::size_t kBatchSize = 16;

  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 16;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();

  std::thread feeder_thread([&rt] {
    FlowSampler sampler(128, 0.0, 21);
    FlowFeeder feeder(&sampler);
    for (int i = 0; i < kBatches; ++i) {
      rt.Dispatch(feeder.Next(kBatchSize));
    }
  });

  std::uint64_t last_packets = 0;
  std::uint64_t last_batches = 0;
  std::uint64_t last_hist_count = 0;
  for (int scrape = 0; scrape < 100; ++scrape) {
    const RuntimeStats stats = rt.Stats();
    ASSERT_GE(stats.totals.packets, last_packets)
        << "packet counter went backwards at scrape " << scrape;
    ASSERT_GE(stats.totals.batches, last_batches)
        << "batch counter went backwards at scrape " << scrape;
    last_packets = stats.totals.packets;
    last_batches = stats.totals.batches;

    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : stats.batch_cycles.buckets) {
      bucket_total += b;
    }
    ASSERT_EQ(bucket_total, stats.batch_cycles.count)
        << "torn batch_cycles histogram at scrape " << scrape;
    ASSERT_GE(stats.batch_cycles.count, last_hist_count)
        << "histogram count went backwards at scrape " << scrape;
    last_hist_count = stats.batch_cycles.count;

    // The exporters must stay usable mid-run too.
    if (scrape % 25 == 0) {
      EXPECT_NE(rt.ScrapePrometheus().find("runtime_packets_total"),
                std::string::npos);
      EXPECT_NE(rt.ScrapeJson().find("runtime.batch_cycles"),
                std::string::npos);
    }
  }

  feeder_thread.join();
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.totals.packets, kBatches * kBatchSize);
  EXPECT_GE(stats.totals.packets, last_packets);
  EXPECT_EQ(stats.batch_cycles.count, stats.totals.batches)
      << "every executed sub-batch records exactly one batch_cycles sample";
  EXPECT_GT(stats.mempool_in_use_hwm, 0u);
  EXPECT_EQ(stats.mempool_in_use, 0u)
      << "all packets freed after shutdown";
  EXPECT_EQ(stats.mempool_alloc_failures, 0u);
}

TEST(Runtime, ShutdownIsIdempotent) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();
  rt.Shutdown();
  rt.Shutdown();  // second call is a no-op
  EXPECT_EQ(rt.Stats().totals.faults, 0u);
}

// Flow correlation end to end: with the tracer armed, a faulting run must
// produce async "flow" tracks whose events cover dispatch (driver thread),
// worker batch execution, and recovery (supervisor thread) — and the
// exported JSON must keep the 'b'/'e' pairing balanced.
TEST(Runtime, FlowCorrelatedTraceSpansDispatchWorkersAndRecovery) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disarm();
  tracer.Reset();
  tracer.Arm(1 << 15);
  tracer.SetThreadName("flow-test-driver");

  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.queue_depth = 16;
  std::vector<StageSpec> spec;
  spec.push_back({"flaky-null", [](std::size_t worker) {
                    return std::make_unique<NullFilter>(
                        worker == 0 ? 3 : 0);
                  }});
  Runtime rt(cfg, spec);
  rt.Start();
  FlowSampler sampler(64, 0.0, 13);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < 200; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  rt.Shutdown();
  EXPECT_GE(rt.Stats().totals.recoveries, 1u);

  const std::string json = tracer.ExportChromeJson();
  tracer.Disarm();
  tracer.Reset();
  auto count_of = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_GT(count_of("\"name\":\"flow.dispatch\""), 0u);
  EXPECT_GT(count_of("\"name\":\"flow.batch\""), 0u);
  EXPECT_GT(count_of("\"name\":\"flow.recover\""), 0u);
  EXPECT_GT(count_of("\"cat\":\"flow\""), 0u);
  EXPECT_EQ(count_of("\"ph\":\"b\""), count_of("\"ph\":\"e\""))
      << "async begin/end pairing broke (see tools/trace_lint)";
}

// Cross-replica ordering + exactly-once recorder for the stealing tests.
// Unlike OrderingCheck it has no affinity assertion (flows legitimately
// migrate between replicas) — instead it checks the invariants stealing
// must preserve: per-flow sequence numbers arrive in increasing order
// *globally*, and no (flow, seq) pair is ever processed twice.
class GlobalSeqCheck : public Operator {
 public:
  struct Shared {
    std::mutex mu;
    std::map<std::uint64_t, std::uint64_t> last_seq;  // flow -> newest seq
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    std::atomic<bool> ordering_violation{false};
    std::atomic<bool> duplicate{false};
  };

  explicit GlobalSeqCheck(Shared* shared) : shared_(shared) {}

  PacketBatch Process(PacketBatch batch) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    for (PacketBuf& pkt : batch) {
      const std::uint64_t key = pkt.Tuple().Hash();
      const std::uint64_t seq = ReadFlowSeq(pkt);
      if (!shared_->seen.insert({key, seq}).second) {
        shared_->duplicate = true;
      }
      auto [it, fresh] = shared_->last_seq.try_emplace(key, seq);
      if (!fresh) {
        if (seq <= it->second) {
          shared_->ordering_violation = true;
        }
        it->second = seq;
      }
    }
    return batch;
  }

  std::string_view name() const override { return "global-seq-check"; }

 private:
  Shared* shared_;
};

// Flows that all hash-home to one worker — the adversarial skew for the
// stealing tests: every other worker can only ever get work by stealing.
std::vector<FiveTuple> FlowsPinnedTo(const Runtime& rt, std::size_t worker,
                                     std::size_t n) {
  std::vector<FiveTuple> flows;
  FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0x0a000002;
  t.dst_port = 80;
  for (std::uint32_t port = 1; flows.size() < n && port < 60000; ++port) {
    t.src_port = static_cast<std::uint16_t>(port);
    if (rt.WorkerFor(t) == worker) {
      flows.push_back(t);
    }
  }
  return flows;
}

// Burns wall-clock per batch on selected replicas so a dispatched backlog
// persists long enough for idle peers to steal it.
class SpinStage : public Operator {
 public:
  explicit SpinStage(std::chrono::microseconds per_batch) : per_batch_(per_batch) {}

  PacketBatch Process(PacketBatch batch) override {
    const auto until = std::chrono::steady_clock::now() + per_batch_;
    while (std::chrono::steady_clock::now() < until) {
    }
    return batch;
  }

  std::string_view name() const override { return "spin"; }

 private:
  std::chrono::microseconds per_batch_;
};

// Deterministic feeder over a fixed flow list: each batch carries ONE
// flow's next n seqs (flows round-robin across batches). Single-flow
// sub-batches matter for the stealing tests — the victim's in-flight
// exclusion set is the flows of the sub-batch it is processing, so a
// feeder that mixed every flow into every batch would (correctly) make
// every flow off-limits and no steal could ever happen.
class PinnedFeeder {
 public:
  explicit PinnedFeeder(std::vector<FiveTuple> flows)
      : flows_(std::move(flows)), next_seq_(flows_.size(), 0) {}

  FlowBatch Next(std::size_t n) {
    FlowBatch batch(n);
    const std::size_t idx = cursor_++ % flows_.size();
    for (std::size_t i = 0; i < n; ++i) {
      batch.Push(FlowWork{flows_[idx], next_seq_[idx]++});
    }
    return batch;
  }

 private:
  std::vector<FiveTuple> flows_;
  std::vector<std::uint64_t> next_seq_;
  std::size_t cursor_ = 0;
};

// Work stealing end to end: all flows hash to worker 0, so workers 1..3
// only process anything by stealing — and per-flow ordering must survive
// every migration, with every item processed exactly once.
TEST(Runtime, StealingBalancesPinnedLoadAndPreservesPerFlowOrdering) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 600;
  constexpr std::size_t kBatchSize = 32;

  GlobalSeqCheck::Shared shared;
  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 0;  // unbounded: the whole load lands before Shutdown
  cfg.stealing.enabled = true;
  cfg.stealing.min_victim_depth = 2;
  // Steal nudges ride the supervisor wake; tighten its cadence so several
  // land while the pinned backlog persists.
  cfg.supervision.watchdog_period_ms = 5;
  std::vector<StageSpec> spec;
  spec.push_back({"check", [&shared](std::size_t) {
                    return std::make_unique<GlobalSeqCheck>(&shared);
                  }});
  // Worker 0 (every flow's hash home) is deliberately slow, so the backlog
  // survives until the idle peers wake up and steal it.
  spec.push_back({"slow", [](std::size_t worker) -> std::unique_ptr<Operator> {
                    if (worker == 0) {
                      return std::make_unique<SpinStage>(
                          std::chrono::microseconds(50));
                    }
                    return std::make_unique<NullFilter>();
                  }});
  Runtime rt(cfg, spec);
  const std::vector<FiveTuple> flows = FlowsPinnedTo(rt, 0, 12);
  ASSERT_EQ(flows.size(), 12u);
  rt.Start();

  PinnedFeeder feeder(flows);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  // Drain while still accepting: Shutdown closes the queues, and a closed
  // queue is never stolen from — the steals must happen in this window.
  for (int i = 0; i < 5000; ++i) {
    if (rt.Stats().totals.packets >= kBatches * kBatchSize) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_FALSE(shared.ordering_violation.load())
      << "per-flow sequence numbers arrived out of order across a steal";
  EXPECT_FALSE(shared.duplicate.load())
      << "a (flow, seq) pair was processed twice";
  EXPECT_EQ(stats.totals.packets, kBatches * kBatchSize)
      << "stealing must not lose or strand work";
  EXPECT_EQ(stats.totals.drops, 0u);
  EXPECT_GE(stats.totals.steals, 1u)
      << "a fully pinned load on 4 workers must trigger stealing";
  EXPECT_GE(stats.totals.stolen_items, 1u);
  EXPECT_NE(stats.Summary().find("steals="), std::string::npos);
  // The thieves actually processed some of the load.
  std::uint64_t thief_packets = 0;
  for (std::size_t w = 1; w < kWorkers; ++w) {
    thief_packets += stats.workers[w].packets;
  }
  EXPECT_GE(thief_packets, stats.totals.stolen_items)
      << "stolen items are processed on the thief's replica";
}

// Steal under fault: the thief replicas panic on every batch and get
// quarantined (drop policy). A stolen sub-batch caught in that must be
// either processed or *counted* as dropped — never stranded, never run
// twice.
TEST(Runtime, StealUnderFaultNeitherStrandsNorDoubleProcesses) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 600;
  constexpr std::size_t kBatchSize = 16;

  GlobalSeqCheck::Shared shared;
  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 0;  // unbounded: the whole load lands before Shutdown
  cfg.stealing.enabled = true;
  cfg.supervision.max_recovery_attempts = 2;
  cfg.supervision.watchdog_period_ms = 5;
  std::vector<StageSpec> spec;
  spec.push_back({"check", [&shared](std::size_t) {
                    return std::make_unique<GlobalSeqCheck>(&shared);
                  }});
  // Worker 0 (every flow's hash home) is slow so its backlog gets stolen;
  // the thief replicas (workers 1..3) then panic on every stolen batch.
  spec.push_back({"flaky", [](std::size_t worker) -> std::unique_ptr<Operator> {
                    if (worker == 0) {
                      return std::make_unique<SpinStage>(
                          std::chrono::microseconds(50));
                    }
                    return std::make_unique<NullFilter>(1);
                  }});
  Runtime rt(cfg, spec);
  const std::vector<FiveTuple> flows = FlowsPinnedTo(rt, 0, 12);
  ASSERT_EQ(flows.size(), 12u);
  rt.Start();

  PinnedFeeder feeder(flows);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  // Drain while still accepting, as above: steals only happen while the
  // victim's queue is open.
  for (int i = 0; i < 5000; ++i) {
    const RuntimeStats s = rt.Stats();
    if (s.totals.packets + s.totals.drops >= kBatches * kBatchSize) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_GE(stats.totals.steals, 1u) << "no steal happened; test is vacuous";
  EXPECT_GE(stats.totals.faults, 1u)
      << "a stolen batch must have hit the thief's faulting stage";
  EXPECT_FALSE(shared.duplicate.load())
      << "a faulted steal re-processed a (flow, seq) pair";
  EXPECT_FALSE(shared.ordering_violation.load());
  // Conservation is the no-stranding proof: every dispatched item either
  // left the pipeline or is accounted as a drop (faulted or quarantined).
  EXPECT_EQ(stats.totals.packets + stats.totals.drops,
            kBatches * kBatchSize)
      << "a stolen sub-batch was stranded by the fault";
}

// Adaptive gate, closed: stealing configured on but with a gain bar no
// backlog can clear must behave exactly like stealing disabled — zero
// steals, zero migrations, and the dispatch path producing identical
// per-worker counters (one steal would re-home flows and break equality).
TEST(Runtime, AdaptiveGateClosedMatchesStealingDisabled) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatchSize = 16;

  auto run = [&](bool enabled, double min_gain_factor) {
    RuntimeConfig cfg;
    cfg.workers = kWorkers;
    cfg.queue_depth = 0;
    cfg.stealing.enabled = enabled;
    cfg.stealing.min_gain_factor = min_gain_factor;
    std::vector<StageSpec> spec;
    // Worker 0 is slow so a stealable backlog exists the whole run: the
    // gated run must *refuse* real opportunities, not merely never see one.
    spec.push_back(
        {"slow", [](std::size_t worker) -> std::unique_ptr<Operator> {
           if (worker == 0) {
             return std::make_unique<SpinStage>(std::chrono::microseconds(50));
           }
           return std::make_unique<NullFilter>();
         }});
    Runtime rt(cfg, spec);
    const std::vector<FiveTuple> flows = FlowsPinnedTo(rt, 0, 12);
    rt.Start();
    PinnedFeeder feeder(flows);
    for (int i = 0; i < kBatches; ++i) {
      rt.Dispatch(feeder.Next(kBatchSize));
    }
    for (int i = 0; i < 5000; ++i) {
      if (rt.Stats().totals.packets >= kBatches * kBatchSize) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    rt.Shutdown();
    return rt.Stats();
  };

  const RuntimeStats off = run(/*enabled=*/false, 2.0);
  // min_gain_factor so high no finite backlog opens the gate.
  const RuntimeStats gated = run(/*enabled=*/true, 1e9);

  EXPECT_EQ(gated.totals.steals, 0u) << "closed gate must suppress steals";
  EXPECT_EQ(gated.totals.stolen_items, 0u);
  EXPECT_EQ(gated.migrated_flows, 0u);
  ASSERT_EQ(off.workers.size(), gated.workers.size());
  for (std::size_t w = 0; w < off.workers.size(); ++w) {
    EXPECT_EQ(off.workers[w].packets, gated.workers[w].packets)
        << "worker " << w << ": gated dispatch routed differently than "
        << "stealing-off dispatch";
    EXPECT_EQ(off.workers[w].batches, gated.workers[w].batches)
        << "worker " << w << ": sub-batch fan-out differs";
  }
  EXPECT_EQ(off.totals.packets, gated.totals.packets);
  EXPECT_EQ(gated.totals.packets, kBatches * kBatchSize);
}

// Steal storm, suppressed: under near-uniform load with a closed gate, an
// idle worker keeps *finding* victims above min_victim_depth but must skip
// every one — the refusals land in steal_skipped_total and no work moves.
TEST(Runtime, UniformLoadWithClosedGateCountsSkippedSteals) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatchSize = 16;

  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 0;
  cfg.stealing.enabled = true;
  cfg.stealing.min_gain_factor = 1e9;  // gate never opens
  cfg.supervision.watchdog_period_ms = 2;  // several nudges per backlog
  std::vector<StageSpec> spec;
  // Worker 0 is the fast one: it drains its share quickly, goes idle, and
  // then repeatedly sizes up its slow peers' backlogs.
  spec.push_back(
      {"uneven", [](std::size_t worker) -> std::unique_ptr<Operator> {
         if (worker == 0) {
           return std::make_unique<NullFilter>();
         }
         return std::make_unique<SpinStage>(std::chrono::microseconds(20));
       }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(64, 0.0, 17);  // uniform across all workers
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  for (int i = 0; i < 5000; ++i) {
    if (rt.Stats().totals.packets >= kBatches * kBatchSize) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.totals.packets, kBatches * kBatchSize)
      << "skipped steals must not lose work";
  EXPECT_EQ(stats.totals.steals, 0u);
  EXPECT_EQ(stats.migrated_flows, 0u);
  EXPECT_GE(stats.totals.steals_skipped, 1u)
      << "an idle worker staring at deep peers must record its refusals";
  EXPECT_NE(stats.Summary().find("steals_skipped="), std::string::npos);
}

// Paced rx: the rx thread must keep every queue at/below the high-water
// mark instead of blocking inside a full channel, and still deliver its
// whole quota. Runs two quotas to cover rx-thread reuse.
TEST(Runtime, PacedRxHoldsQueuesAtHighWaterAndDeliversQuota) {
  constexpr std::size_t kWorkers = 2;
  constexpr std::uint64_t kQuota = 40;

  RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 16;
  cfg.paced_rx.enabled = true;
  cfg.paced_rx.burst = 16;
  cfg.paced_rx.high_water_frac = 0.5;  // mark = 8 sub-batches
  cfg.paced_rx.pause_us = 5;
  std::vector<StageSpec> spec;
  // A deliberately slow stage so the queues actually fill.
  spec.push_back({"spin", [](std::size_t) {
                    class Spin : public Operator {
                     public:
                      PacketBatch Process(PacketBatch batch) override {
                        const auto until = std::chrono::steady_clock::now() +
                                           std::chrono::microseconds(200);
                        while (std::chrono::steady_clock::now() < until) {
                        }
                        return batch;
                      }
                      std::string_view name() const override { return "spin"; }
                    };
                    return std::make_unique<Spin>();
                  }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(64, 0.0, 23);
  FlowFeeder feeder(&sampler);
  rt.StartPacedRx(&feeder, kQuota);
  rt.WaitRxIdle();
  rt.StartPacedRx(&feeder, kQuota);  // second quota reuses the rx slot
  rt.WaitRxIdle();
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.rx_batches, 2 * kQuota) << "rx must deliver its quota";
  EXPECT_EQ(stats.totals.packets, 2 * kQuota * cfg.paced_rx.burst);
  EXPECT_EQ(stats.totals.drops, 0u);
  // Pacing invariant: rx only dispatches while every queue is below the
  // mark, and one dispatch adds at most one sub-batch per queue.
  EXPECT_LE(stats.totals.queue_hwm, 8u)
      << "rx pushed a queue past the high-water mark";
  EXPECT_GE(stats.rx_pauses, 1u)
      << "with a slow stage the rx thread must have paused at least once";
}

// An injected channel.send fault surfaces as a failed Dispatch on the
// driver thread — counted, contained, and the runtime keeps accepting.
TEST(Runtime, ChannelSendFaultIsContainedAtDispatch) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();
  FlowSampler sampler(64, 0.0, 17);
  FlowFeeder feeder(&sampler);
  ASSERT_TRUE(rt.Dispatch(feeder.Next(8)));

  util::FaultInjector::Global().ArmOneShot("channel.send",
                                           util::PanicKind::kExplicit);
  EXPECT_FALSE(rt.Dispatch(feeder.Next(8)))
      << "faulted dispatch must report failure, not throw";
  EXPECT_EQ(
      rt.registry().GetCounter("runtime.dispatch_faults_total")->Value(), 1u);

  EXPECT_TRUE(rt.Dispatch(feeder.Next(8)));  // one-shot consumed, flow resumes
  rt.Shutdown();
  util::FaultInjector::Global().Reset();
  const RuntimeStats stats = rt.Stats();
  EXPECT_GT(stats.totals.packets, 0u);
  EXPECT_EQ(stats.totals.faults, 0u) << "fault never reached a worker";
}

}  // namespace
}  // namespace net
