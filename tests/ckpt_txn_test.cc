// Undo-log transactions over Checkpointable state (§5 "automation" beyond
// checkpointing): commit keeps, abort restores, panics roll back, and the
// aliasing structure survives rollback like any other restore.
#include "src/ckpt/txn.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ckpt/trie.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace ckpt {
namespace {

struct Account {
  std::int64_t balance = 0;
  std::vector<std::string> log;
  LINSYS_CHECKPOINT_FIELDS(balance, log)
};

TEST(Transaction, CommitKeepsMutations) {
  Account acct{100, {}};
  {
    Transaction<Account> txn(&acct);
    acct.balance -= 30;
    acct.log.push_back("withdraw 30");
    txn.Commit();
  }
  EXPECT_EQ(acct.balance, 70);
  ASSERT_EQ(acct.log.size(), 1u);
}

TEST(Transaction, AbortRestoresState) {
  Account acct{100, {"initial"}};
  {
    Transaction<Account> txn(&acct);
    acct.balance = -999;
    acct.log.clear();
    txn.Abort();
  }
  EXPECT_EQ(acct.balance, 100);
  ASSERT_EQ(acct.log.size(), 1u);
  EXPECT_EQ(acct.log[0], "initial");
}

TEST(Transaction, ScopeExitWithoutCommitAborts) {
  Account acct{50, {}};
  {
    Transaction<Account> txn(&acct);
    acct.balance = 0;
    // no Commit
  }
  EXPECT_EQ(acct.balance, 50);
}

TEST(Transaction, PanicUnwindRollsBack) {
  Account acct{100, {}};
  try {
    Transaction<Account> txn(&acct);
    acct.balance -= 60;
    LINSYS_ASSERT(acct.balance >= 50, "balance floor violated");
    txn.Commit();
  } catch (const util::PanicError&) {
  }
  EXPECT_EQ(acct.balance, 100) << "failed transaction must leave no trace";
}

TEST(Transaction, DoubleFinishPanics) {
  Account acct{1, {}};
  Transaction<Account> txn(&acct);
  txn.Commit();
  EXPECT_FALSE(txn.active());
  EXPECT_THROW(txn.Abort(), util::PanicError);
}

TEST(Transaction, SequentialTransactionsCompose) {
  Account acct{0, {}};
  for (int i = 1; i <= 5; ++i) {
    Transaction<Account> txn(&acct);
    acct.balance += i;
    if (i % 2 == 0) {
      txn.Abort();  // even deposits rejected
    } else {
      txn.Commit();
    }
  }
  EXPECT_EQ(acct.balance, 1 + 3 + 5);
}

TEST(Atomically, CommitsOnReturnRollsBackOnPanic) {
  Account acct{10, {}};
  EXPECT_TRUE(Atomically(&acct, [](Account& a) { a.balance *= 2; }));
  EXPECT_EQ(acct.balance, 20);

  EXPECT_THROW(Atomically(&acct,
                          [](Account& a) {
                            a.balance = 12345;
                            util::Panic("validation failed");
                          }),
               util::PanicError);
  EXPECT_EQ(acct.balance, 20);
}

TEST(Transaction, AliasedTrieRollsBackWithSharingIntact) {
  RuleTrie trie;
  FwRule r;
  r.id = 7;
  RulePtr shared = RulePtr::Make(r);
  trie.Insert(0x0a000000, 16, shared);
  trie.Insert(0x0b000000, 16, shared);
  ASSERT_EQ(trie.DistinctRuleCount(), 1u);

  {
    Transaction<RuleTrie> txn(&trie);
    FwRule extra;
    extra.id = 8;
    trie.Insert(0x0c000000, 16, RulePtr::Make(extra));
    ASSERT_EQ(trie.RuleSlotCount(), 3u);
    txn.Abort();
  }
  EXPECT_EQ(trie.RuleSlotCount(), 2u) << "insert rolled back";
  EXPECT_EQ(trie.DistinctRuleCount(), 1u)
      << "sharing pattern restored, not split";
}

// The "ckpt.txn_restore" storm hook: a restore dying mid-Abort surfaces as
// a panic at the Abort() call with the state untouched — the caller can
// observe the failed abort and the mutation is still visible (crash during
// recovery, not silent corruption).
TEST(Transaction, InjectedRestoreFaultInAbortPropagates) {
  auto& inj = util::FaultInjector::Global();
  inj.Reset();
  inj.ArmOneShot("ckpt.txn_restore");

  Account acct{100, {}};
  {
    Transaction<Account> txn(&acct);
    acct.balance = 55;
    EXPECT_THROW(txn.Abort(), util::PanicError);
    EXPECT_TRUE(txn.active()) << "failed abort leaves the txn open";
    txn.Commit();  // close it so the dtor doesn't re-run the restore
  }
  EXPECT_EQ(acct.balance, 55) << "restore never ran";
  inj.Reset();
}

// The dtor flavour: an uncommitted guard going out of scope normally hits
// the same fault point and may throw (the dtor is noexcept(false) exactly
// for this). When the scope is already unwinding a panic, the fault point
// is skipped — the rollback must run, not terminate the process.
TEST(Transaction, InjectedRestoreFaultInDtorOnlyWhenNotUnwinding) {
  auto& inj = util::FaultInjector::Global();
  inj.Reset();
  inj.ArmEveryNth("ckpt.txn_restore", 1);

  Account acct{100, {}};
  EXPECT_THROW(
      {
        Transaction<Account> txn(&acct);
        acct.balance = 77;
        // No Commit: the dtor aborts and the armed fault point fires.
      },
      util::PanicError);
  EXPECT_EQ(acct.balance, 77) << "restore never ran";

  // Unwinding path: the mutator panics, the dtor must NOT inject (it would
  // std::terminate) and the rollback must complete.
  EXPECT_THROW(Atomically(&acct,
                          [](Account& a) {
                            a.balance = -1;
                            util::Panic("mutator died");
                          }),
               util::PanicError);
  EXPECT_EQ(acct.balance, 77) << "rollback ran despite the armed site";
  inj.Reset();
}

}  // namespace
}  // namespace ckpt
