// Undo-log transactions over Checkpointable state (§5 "automation" beyond
// checkpointing): commit keeps, abort restores, panics roll back, and the
// aliasing structure survives rollback like any other restore.
#include "src/ckpt/txn.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ckpt/trie.h"
#include "src/util/panic.h"

namespace ckpt {
namespace {

struct Account {
  std::int64_t balance = 0;
  std::vector<std::string> log;
  LINSYS_CHECKPOINT_FIELDS(balance, log)
};

TEST(Transaction, CommitKeepsMutations) {
  Account acct{100, {}};
  {
    Transaction<Account> txn(&acct);
    acct.balance -= 30;
    acct.log.push_back("withdraw 30");
    txn.Commit();
  }
  EXPECT_EQ(acct.balance, 70);
  ASSERT_EQ(acct.log.size(), 1u);
}

TEST(Transaction, AbortRestoresState) {
  Account acct{100, {"initial"}};
  {
    Transaction<Account> txn(&acct);
    acct.balance = -999;
    acct.log.clear();
    txn.Abort();
  }
  EXPECT_EQ(acct.balance, 100);
  ASSERT_EQ(acct.log.size(), 1u);
  EXPECT_EQ(acct.log[0], "initial");
}

TEST(Transaction, ScopeExitWithoutCommitAborts) {
  Account acct{50, {}};
  {
    Transaction<Account> txn(&acct);
    acct.balance = 0;
    // no Commit
  }
  EXPECT_EQ(acct.balance, 50);
}

TEST(Transaction, PanicUnwindRollsBack) {
  Account acct{100, {}};
  try {
    Transaction<Account> txn(&acct);
    acct.balance -= 60;
    LINSYS_ASSERT(acct.balance >= 50, "balance floor violated");
    txn.Commit();
  } catch (const util::PanicError&) {
  }
  EXPECT_EQ(acct.balance, 100) << "failed transaction must leave no trace";
}

TEST(Transaction, DoubleFinishPanics) {
  Account acct{1, {}};
  Transaction<Account> txn(&acct);
  txn.Commit();
  EXPECT_FALSE(txn.active());
  EXPECT_THROW(txn.Abort(), util::PanicError);
}

TEST(Transaction, SequentialTransactionsCompose) {
  Account acct{0, {}};
  for (int i = 1; i <= 5; ++i) {
    Transaction<Account> txn(&acct);
    acct.balance += i;
    if (i % 2 == 0) {
      txn.Abort();  // even deposits rejected
    } else {
      txn.Commit();
    }
  }
  EXPECT_EQ(acct.balance, 1 + 3 + 5);
}

TEST(Atomically, CommitsOnReturnRollsBackOnPanic) {
  Account acct{10, {}};
  EXPECT_TRUE(Atomically(&acct, [](Account& a) { a.balance *= 2; }));
  EXPECT_EQ(acct.balance, 20);

  EXPECT_THROW(Atomically(&acct,
                          [](Account& a) {
                            a.balance = 12345;
                            util::Panic("validation failed");
                          }),
               util::PanicError);
  EXPECT_EQ(acct.balance, 20);
}

TEST(Transaction, AliasedTrieRollsBackWithSharingIntact) {
  RuleTrie trie;
  FwRule r;
  r.id = 7;
  RulePtr shared = RulePtr::Make(r);
  trie.Insert(0x0a000000, 16, shared);
  trie.Insert(0x0b000000, 16, shared);
  ASSERT_EQ(trie.DistinctRuleCount(), 1u);

  {
    Transaction<RuleTrie> txn(&trie);
    FwRule extra;
    extra.id = 8;
    trie.Insert(0x0c000000, 16, RulePtr::Make(extra));
    ASSERT_EQ(trie.RuleSlotCount(), 3u);
    txn.Abort();
  }
  EXPECT_EQ(trie.RuleSlotCount(), 2u) << "insert rolled back";
  EXPECT_EQ(trie.DistinctRuleCount(), 1u)
      << "sharing pattern restored, not split";
}

}  // namespace
}  // namespace ckpt
