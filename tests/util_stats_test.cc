#include "src/util/stats.h"

#include <gtest/gtest.h>

#include "src/util/panic.h"

namespace util {
namespace {

TEST(Samples, MeanMinMaxOfKnownValues) {
  Samples s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Samples, MedianOddAndEven) {
  Samples odd;
  for (double v : {5.0, 1.0, 3.0}) {
    odd.Add(v);
  }
  EXPECT_DOUBLE_EQ(odd.Median(), 3.0);

  Samples even;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    even.Add(v);
  }
  EXPECT_DOUBLE_EQ(even.Median(), 2.5);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (int i = 0; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 50.0);
  EXPECT_NEAR(s.Percentile(99.0), 99.0, 1e-9);
}

TEST(Samples, PercentileSingleSample) {
  Samples s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(77.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 42.0);
}

TEST(Samples, TrimmedMeanDiscardsOutliers) {
  Samples s;
  for (int i = 0; i < 98; ++i) {
    s.Add(10.0);
  }
  s.Add(100000.0);
  s.Add(-100000.0);
  EXPECT_DOUBLE_EQ(s.TrimmedMean(5.0), 10.0);
  EXPECT_NE(s.Mean(), 10.0);
}

TEST(Samples, StddevKnownValue) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(s.Stddev(), 2.138, 1e-3);
}

TEST(Samples, StddevDegenerateCases) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(Samples, EmptyPanicsInsteadOfUb) {
  Samples s;
  EXPECT_THROW(s.Mean(), PanicError);
  EXPECT_THROW(s.Percentile(50.0), PanicError);
  EXPECT_THROW(s.TrimmedMean(), PanicError);
}

TEST(Samples, AddAfterQueryResorts) {
  Samples s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  s.Add(0.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  s.Add(30.0);
  s.Add(40.0);
  EXPECT_DOUBLE_EQ(s.Median(), 20.0);
}

TEST(Samples, ClearResets) {
  Samples s;
  s.Add(1.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
}

TEST(Samples, SummaryMentionsCount) {
  Samples s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_NE(s.Summary().find("n=2"), std::string::npos);
  Samples empty;
  EXPECT_EQ(empty.Summary(), "(no samples)");
}

TEST(Panic, CountsAndKinds) {
  const std::uint64_t before = PanicCount();
  try {
    Panic(PanicKind::kBoundsCheck, "oob");
  } catch (const PanicError& e) {
    EXPECT_EQ(e.kind(), PanicKind::kBoundsCheck);
    EXPECT_STREQ(e.what(), "oob");
  }
  EXPECT_EQ(PanicCount(), before + 1);
  EXPECT_EQ(PanicKindName(PanicKind::kUseAfterMove), "use-after-move");
  EXPECT_EQ(PanicKindName(PanicKind::kRevokedRef), "revoked-ref");
}

}  // namespace
}  // namespace util
