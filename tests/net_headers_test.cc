#include "src/net/headers.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/net/mempool.h"
#include "src/net/packet.h"
#include "src/util/rng.h"

namespace net {
namespace {

TEST(Endian, RoundTrips) {
  EXPECT_EQ(HostToNet16(0x1234), 0x3412);
  EXPECT_EQ(NetToHost16(HostToNet16(0xabcd)), 0xabcd);
  EXPECT_EQ(HostToNet32(0x12345678u), 0x78563412u);
  EXPECT_EQ(NetToHost32(HostToNet32(0xdeadbeefu)), 0xdeadbeefu);
}

TEST(Checksum, RfcExampleVerifies) {
  // A checksum computed over a header must verify to zero when summed back
  // (standard receiver check: checksum over header including checksum field
  // yields 0).
  Ipv4Hdr ip{};
  ip.version_ihl = 0x45;
  ip.total_length = HostToNet16(100);
  ip.ttl = 64;
  ip.protocol = Ipv4Hdr::kProtoUdp;
  ip.src_addr = HostToNet32(0x0a000001);
  ip.dst_addr = HostToNet32(0xc0a80001);
  FixIpv4Checksum(&ip);
  EXPECT_EQ(InternetChecksum(&ip, sizeof(ip)), 0);
}

TEST(Checksum, OddLengthHandled) {
  const std::uint8_t data[3] = {0x01, 0x02, 0x03};
  // Must not read past the buffer and must fold the trailing byte.
  const std::uint16_t c = InternetChecksum(data, 3);
  EXPECT_NE(c, 0);
}

TEST(Checksum, IncrementalFixup16MatchesRecompute) {
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Ipv4Hdr ip{};
    ip.version_ihl = 0x45;
    ip.ttl = static_cast<std::uint8_t>(2 + rng.Below(250));
    ip.protocol = Ipv4Hdr::kProtoUdp;
    ip.src_addr = rng.NextU32();
    ip.dst_addr = rng.NextU32();
    FixIpv4Checksum(&ip);

    // Mutate the TTL/protocol word via the incremental method.
    std::uint16_t old_word;
    std::memcpy(&old_word, &ip.ttl, 2);
    ip.ttl -= 1;
    std::uint16_t new_word;
    std::memcpy(&new_word, &ip.ttl, 2);
    ip.header_checksum =
        ChecksumFixup16(ip.header_checksum, old_word, new_word);

    EXPECT_EQ(InternetChecksum(&ip, sizeof(ip)), 0) << "trial " << trial;
  }
}

TEST(Checksum, IncrementalFixup32MatchesRecompute) {
  util::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    Ipv4Hdr ip{};
    ip.version_ihl = 0x45;
    ip.ttl = 64;
    ip.protocol = Ipv4Hdr::kProtoUdp;
    ip.src_addr = rng.NextU32();
    ip.dst_addr = rng.NextU32();
    FixIpv4Checksum(&ip);

    const std::uint32_t old_dst = ip.dst_addr;
    const std::uint32_t new_dst = rng.NextU32();
    ip.dst_addr = new_dst;
    ip.header_checksum =
        ChecksumFixup32(ip.header_checksum, old_dst, new_dst);

    EXPECT_EQ(InternetChecksum(&ip, sizeof(ip)), 0) << "trial " << trial;
  }
}

TEST(FiveTuple, HashDistinguishesFields) {
  FiveTuple base{1, 2, 3, 4, 17};
  FiveTuple diff_src = base;
  diff_src.src_ip = 99;
  FiveTuple diff_port = base;
  diff_port.dst_port = 99;
  EXPECT_NE(base.Hash(), diff_src.Hash());
  EXPECT_NE(base.Hash(), diff_port.Hash());
  EXPECT_EQ(base.Hash(), FiveTuple(base).Hash());
}

TEST(FiveTuple, SeedChangesHash) {
  FiveTuple t{1, 2, 3, 4, 17};
  EXPECT_NE(t.Hash(1), t.Hash(2));
}

TEST(BuildFrame, ProducesValidParsableFrame) {
  Mempool pool(4, 2048);
  PacketBuf pkt = PacketBuf::Alloc(&pool, 128);
  ASSERT_TRUE(pkt.has_value());
  const FiveTuple want{0x0a000001, 0xc0a80001, 5555, 80,
                       Ipv4Hdr::kProtoUdp};
  BuildFrame(pkt, want, 17);

  EXPECT_EQ(NetToHost16(pkt.eth()->ether_type), EthHdr::kTypeIpv4);
  EXPECT_EQ(pkt.ipv4()->ttl, 17);
  EXPECT_EQ(InternetChecksum(pkt.ipv4(), sizeof(Ipv4Hdr)), 0)
      << "generated frames carry valid IPv4 checksums";
  EXPECT_EQ(pkt.Tuple(), want) << "parse(B build(t)) == t";
  EXPECT_EQ(pkt.payload_length(), 128 - kPayloadOffset);
}

}  // namespace
}  // namespace net
