// Cross-module integration: checkpointing live network-function state — the
// "rollback-recovery for middleboxes" consumer the paper cites (§5) — plus
// the container traits (pair/map/unordered_map) it relies on.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/ckpt/checkpoint.h"
#include "src/net/mempool.h"
#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"

namespace ckpt {
namespace {

TEST(ContainerTraits, PairRoundTrip) {
  auto p = std::make_pair(std::string("key"), 42);
  auto restored = Restore<decltype(p)>(Checkpoint(p));
  EXPECT_EQ(restored, p);
}

TEST(ContainerTraits, MapRoundTrip) {
  std::map<int, std::string> m{{1, "one"}, {2, "two"}, {-5, "neg"}};
  EXPECT_EQ((Restore<std::map<int, std::string>>(Checkpoint(m))), m);
  std::map<int, std::string> empty;
  EXPECT_EQ((Restore<std::map<int, std::string>>(Checkpoint(empty))), empty);
}

TEST(ContainerTraits, UnorderedMapRoundTrip) {
  std::unordered_map<std::uint64_t, std::uint16_t> m;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    m[i * 0x9e3779b9] = static_cast<std::uint16_t>(i);
  }
  auto restored =
      Restore<std::unordered_map<std::uint64_t, std::uint16_t>>(
          Checkpoint(m));
  EXPECT_EQ(restored, m);
}

TEST(ContainerTraits, NestedContainers) {
  std::map<std::string, std::vector<int>> m{{"a", {1, 2}}, {"b", {}}};
  EXPECT_EQ((Restore<std::map<std::string, std::vector<int>>>(
                Checkpoint(m))),
            m);
}

// The NAT state struct with the derive macro — defined here to show a
// downstream user adding checkpointing to a foreign type's exported state.
struct NatSnapshot {
  net::NatRewrite::State state;

  LINSYS_CHECKPOINT_FIELDS(state.public_ip, state.next_port,
                           state.flow_ports, state.translated)
};

net::PacketBatch MakeTraffic(net::Mempool& pool, std::uint64_t seed,
                             std::size_t n) {
  net::PktSourceConfig cfg;
  cfg.flow_count = 64;
  cfg.seed = seed;
  net::PktSource src(&pool, cfg);
  net::PacketBatch batch(n);
  src.RxBurst(batch, n);
  return batch;
}

TEST(NatRollback, CheckpointRestorePreservesMappings) {
  net::Mempool pool(512, 2048);
  net::NatRewrite nat(0x05050505);

  // Phase 1: traffic establishes flow->port mappings.
  net::PacketBatch out = nat.Process(MakeTraffic(pool, 1, 200));
  const std::size_t flows_before = nat.flow_count();
  ASSERT_GT(flows_before, 10u);

  // Record the port each flow got, keyed by pre-NAT source address.
  std::map<std::uint32_t, std::uint16_t> golden;
  for (net::PacketBuf& pkt : out) {
    golden.emplace(net::NetToHost32(pkt.ipv4()->src_addr),
                   net::NetToHost16(pkt.udp()->src_port));
  }
  out.Clear();

  // Checkpoint, then fail over to a blank replacement NAT.
  Snapshot snap = Checkpoint(NatSnapshot{nat.ExportState()});
  net::NatRewrite replacement(0);
  replacement.ImportState(Restore<NatSnapshot>(snap).state);
  EXPECT_EQ(replacement.flow_count(), flows_before);

  // The same flows through the restored NAT must keep their ports
  // (connection affinity across failover -- the point of middlebox
  // rollback). Same seed -> same flow set; compare replicas positionally.
  net::NatRewrite reference(0x05050505);
  reference.ImportState(Restore<NatSnapshot>(snap).state);
  net::PacketBatch a = replacement.Process(MakeTraffic(pool, 1, 100));
  net::PacketBatch b = reference.Process(MakeTraffic(pool, 1, 100));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(net::NetToHost16(a[i].udp()->src_port),
              net::NetToHost16(b[i].udp()->src_port))
        << "restored replicas must assign identical ports";
  }
  EXPECT_EQ(replacement.flow_count(), flows_before)
      << "no new flows: every packet matched a checkpointed mapping";
}

TEST(NatRollback, NewFlowsAfterRestoreGetFreshPorts) {
  net::Mempool pool(512, 2048);
  net::NatRewrite nat(0x05050505);
  (void)nat.Process(MakeTraffic(pool, 3, 100));

  Snapshot snap = Checkpoint(NatSnapshot{nat.ExportState()});
  net::NatRewrite restored(0);
  restored.ImportState(Restore<NatSnapshot>(snap).state);

  const std::size_t before = restored.flow_count();
  (void)restored.Process(MakeTraffic(pool, 999, 100));  // different flows
  EXPECT_GT(restored.flow_count(), before)
      << "port allocator state (next_port) must survive the snapshot";
}

}  // namespace
}  // namespace ckpt
