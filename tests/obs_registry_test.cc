// obs::Registry / Counter / Gauge / Histogram — correctness of the sharded
// lock-free metrics, with emphasis on the consistency contract: scrapes
// taken while writers hammer the metrics must see monotone counters and
// never a torn histogram (sum of buckets == count in every snapshot).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"

namespace {

TEST(Counter, ShardedAddsSum) {
  obs::Counter c(4);
  c.Add(0, 5);
  c.Add(1, 7);
  c.Add(5, 2);  // shard index folds mod 4 -> shard 1
  EXPECT_EQ(c.Value(), 14u);
  EXPECT_EQ(c.ShardValue(0), 5u);
  EXPECT_EQ(c.ShardValue(1), 9u);
}

TEST(Counter, ConcurrentIncrementsAllCounted) {
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 50000;
  obs::Counter c(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        c.Inc(static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(c.Value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(Gauge, SumMaxAndSetMax) {
  obs::Gauge g(3);
  g.Set(0, 10);
  g.Set(1, -3);
  g.Set(2, 7);
  EXPECT_EQ(g.Sum(), 14);
  EXPECT_EQ(g.Max(), 10);
  g.SetMax(1, 25);
  EXPECT_EQ(g.ShardValue(1), 25);
  g.SetMax(1, 4);  // lower value must not regress the max
  EXPECT_EQ(g.ShardValue(1), 25);
}

TEST(Histogram, BucketBoundariesExactBelowFour) {
  // Values 0..3 land in exact singleton buckets.
  for (std::uint64_t v = 0; v < 4; ++v) {
    const std::size_t idx = obs::Histogram::BucketIndex(v);
    EXPECT_EQ(obs::Histogram::BucketLowerBound(idx), v);
    EXPECT_EQ(obs::Histogram::BucketUpperBound(idx), v + 1);
  }
}

TEST(Histogram, BucketIndexConsistentWithBounds) {
  // For a spread of magnitudes, v must land inside [lower, upper) of its
  // own bucket, and bucket lower bounds must be strictly increasing.
  std::vector<std::uint64_t> probes = {0,    1,     3,       4,      5,
                                       7,    8,     100,     1023,   1024,
                                       4096, 65537, 1u << 30};
  probes.push_back(std::uint64_t{1} << 40);
  probes.push_back(std::uint64_t{1} << 62);
  for (std::uint64_t v : probes) {
    const std::size_t idx = obs::Histogram::BucketIndex(v);
    ASSERT_LT(idx, obs::Histogram::kBuckets) << "v=" << v;
    EXPECT_GE(v, obs::Histogram::BucketLowerBound(idx)) << "v=" << v;
    EXPECT_LT(v, obs::Histogram::BucketUpperBound(idx)) << "v=" << v;
  }
  for (std::size_t idx = 1; idx < obs::Histogram::kBuckets; ++idx) {
    EXPECT_LT(obs::Histogram::BucketLowerBound(idx - 1),
              obs::Histogram::BucketLowerBound(idx));
  }
}

TEST(Histogram, SnapshotStatisticsMatchRecords) {
  obs::Histogram h(2);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    h.Record(v % 2, v);
    expected_sum += v;
  }
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, snap.count);
  // Median of 0..999 — allow log-linear bucket width (~12.5% at that size).
  EXPECT_NEAR(snap.Percentile(50.0), 500.0, 80.0);
  EXPECT_NEAR(snap.Mean(), 499.5, 0.5);
}

// The core consistency claim: scraping while writers are mid-Record never
// yields a snapshot whose buckets disagree with its count, and repeated
// scrapes observe monotone counts.
TEST(Histogram, SnapshotConsistentUnderConcurrentWriters) {
  obs::Histogram h(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(static_cast<std::size_t>(t), v);
        v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
        v >>= 32;
      }
    });
  }

  // Keep scraping until the writers have demonstrably made progress (on a
  // single-CPU host 200 back-to-back scrapes can all land before any writer
  // is ever scheduled), bounded by a wall-clock deadline.
  std::uint64_t last_count = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int scrape = 0; scrape < 200 || last_count == 0; ++scrape) {
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const obs::HistogramSnapshot snap = h.Snapshot();
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : snap.buckets) {
      bucket_total += b;
    }
    ASSERT_EQ(bucket_total, snap.count) << "torn snapshot at scrape "
                                        << scrape;
    ASSERT_GE(snap.count, last_count) << "count went backwards";
    last_count = snap.count;
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_GT(last_count, 0u);
}

TEST(Registry, GetOrCreateReturnsStablePointers) {
  obs::Registry reg;
  obs::Counter* a = reg.GetCounter("x.total", 2);
  obs::Counter* b = reg.GetCounter("x.total", 8);  // shards fixed by first
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->shards(), 2u);
  EXPECT_NE(reg.GetCounter("y.total"), a);
  obs::Histogram* h1 = reg.GetHistogram("x.cycles", 2);
  EXPECT_EQ(reg.GetHistogram("x.cycles"), h1);
}

TEST(Registry, ScrapeAndExporters) {
  obs::Registry reg;
  reg.GetCounter("demo.calls_total")->Add(0, 3);
  reg.GetGauge("demo.depth", 2)->Set(1, 9);
  reg.GetHistogram("demo.cycles")->Record(0, 100);
  reg.RegisterGaugeFn("demo.fn_gauge", [] { return std::int64_t{42}; });

  const obs::Snapshot snap = reg.Scrape();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "demo.calls_total");
  EXPECT_EQ(snap.counters[0].value, 3u);
  // Callback gauges surface alongside stored gauges at scrape time.
  bool saw_fn_gauge = false;
  for (const auto& g : snap.gauges) {
    saw_fn_gauge = saw_fn_gauge || (g.name == "demo.fn_gauge" && g.sum == 42);
  }
  EXPECT_TRUE(saw_fn_gauge);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);

  const std::string prom = snap.ToPrometheus();
  EXPECT_NE(prom.find("demo_calls_total 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("demo_cycles_count 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos) << prom;

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"demo.calls_total\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
}

TEST(Metrics, ArmDisarmFlag) {
  EXPECT_FALSE(obs::MetricsArmed());
  obs::ArmMetrics(true);
  EXPECT_TRUE(obs::MetricsArmed());
  obs::ArmMetrics(false);
  EXPECT_FALSE(obs::MetricsArmed());
}

TEST(Metrics, PerGroupArmDisarm) {
  // Groups arm independently; the plain MetricsArmed() is "any group on".
  obs::ArmMetrics(false);
  EXPECT_FALSE(obs::MetricsArmed());
  obs::ArmMetricsGroup(obs::MetricGroup::kSfi, true);
  EXPECT_TRUE(obs::MetricsArmed());
  EXPECT_TRUE(obs::MetricsArmed(obs::MetricGroup::kSfi));
  EXPECT_FALSE(obs::MetricsArmed(obs::MetricGroup::kNet));
  EXPECT_FALSE(obs::MetricsArmed(obs::MetricGroup::kCkpt));
  EXPECT_FALSE(obs::MetricsArmed(obs::MetricGroup::kFault));

  // ArmMetrics(true) is "all groups"; a single group can then drop out.
  obs::ArmMetrics(true);
  EXPECT_TRUE(obs::MetricsArmed(obs::MetricGroup::kNet));
  obs::ArmMetricsGroup(obs::MetricGroup::kNet, false);
  EXPECT_FALSE(obs::MetricsArmed(obs::MetricGroup::kNet));
  EXPECT_TRUE(obs::MetricsArmed(obs::MetricGroup::kSfi));
  EXPECT_TRUE(obs::MetricsArmed());

  obs::ArmMetrics(false);
  EXPECT_FALSE(obs::MetricsArmed());
  EXPECT_FALSE(obs::MetricsArmed(obs::MetricGroup::kSfi));
}

TEST(Histogram, ExemplarsLinkLastSampleToTraceId) {
  obs::Histogram h(2);
  h.Record(0, 100);  // plain record: no exemplar for this bucket
  h.RecordWithExemplar(0, 5000, 0xabcULL);
  h.RecordWithExemplar(1, 5100, 0xdefULL);  // same bucket: last writer wins

  const obs::HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, 3u);
  bool saw_exemplar = false;
  for (const auto& ex : snap.exemplars) {
    EXPECT_NE(ex.trace_id, 0u);  // trace_id 0 never surfaces
    if (ex.value == 5100 && ex.trace_id == 0xdefULL) {
      saw_exemplar = true;
      EXPECT_EQ(obs::Histogram::BucketIndex(5100), ex.bucket);
    }
  }
  EXPECT_TRUE(saw_exemplar);
  // The 100-cycle bucket was only ever plain-Recorded: no exemplar for it.
  for (const auto& ex : snap.exemplars) {
    EXPECT_NE(ex.bucket, obs::Histogram::BucketIndex(100));
  }
}

TEST(Registry, SnapshotDeltaReportsOnlyTheInterval) {
  obs::Registry reg;
  obs::Counter* c = reg.GetCounter("d.calls_total");
  obs::Histogram* h = reg.GetHistogram("d.cycles");
  reg.GetGauge("d.depth")->Set(0, 7);
  c->Add(0, 10);
  h->Record(0, 50);

  const obs::DeltaSnapshot first = reg.SnapshotDelta();
  EXPECT_GT(first.interval_seconds, 0.0);
  ASSERT_EQ(first.counters.size(), 1u);
  EXPECT_EQ(first.counters[0].delta, 10u);
  EXPECT_GT(first.counters[0].rate, 0.0);
  ASSERT_EQ(first.histograms.size(), 1u);
  EXPECT_EQ(first.histograms[0].delta.count, 1u);

  // Nothing happened since: the next delta is all-zero, but gauges still
  // report their current level (a gauge has no meaningful delta).
  const obs::DeltaSnapshot idle = reg.SnapshotDelta();
  EXPECT_EQ(idle.counters[0].delta, 0u);
  EXPECT_EQ(idle.histograms[0].delta.count, 0u);
  bool saw_gauge = false;
  for (const auto& g : idle.gauges) {
    saw_gauge = saw_gauge || (g.name == "d.depth" && g.sum == 7);
  }
  EXPECT_TRUE(saw_gauge);

  // Increment again: only the new work shows, not the cumulative total.
  c->Add(0, 3);
  h->Record(0, 60);
  h->Record(0, 70);
  const obs::DeltaSnapshot second = reg.SnapshotDelta();
  EXPECT_EQ(second.counters[0].delta, 3u);
  EXPECT_EQ(second.histograms[0].delta.count, 2u);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : second.histograms[0].delta.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, 2u);
}

TEST(Registry, SnapshotDeltaJsonShape) {
  obs::Registry reg;
  reg.GetCounter("d.calls_total")->Add(0, 4);
  reg.GetHistogram("d.cycles")->RecordWithExemplar(0, 900, 0x42ULL);
  const obs::DeltaSnapshot d = reg.SnapshotDelta();
  const std::string json = d.ToJson();
  EXPECT_NE(json.find("\"interval_seconds\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":\"0x42\""), std::string::npos) << json;
}

// Delta scrapes under concurrent writers: every interval must be internally
// consistent (bucket deltas sum to the count delta, never "negative" via
// underflow wraparound) and the interval deltas must add back up to the
// cumulative totals once the writers stop.
TEST(Registry, SnapshotDeltaConsistentUnderConcurrentWriters) {
  obs::Registry reg;
  obs::Counter* c = reg.GetCounter("d.calls_total", 4);
  obs::Histogram* h = reg.GetHistogram("d.cycles", 4);
  (void)reg.SnapshotDelta();  // zero the baseline before the writers start

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        c->Inc(static_cast<std::size_t>(t));
        h->Record(static_cast<std::size_t>(t), v & 0xffff);
        v = v * 2862933555777941757ULL + 3037000493ULL;
        v >>= 16;
      }
    });
  }

  std::uint64_t counter_delta_sum = 0;
  std::uint64_t hist_delta_sum = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int scrape = 0; scrape < 100 || counter_delta_sum == 0; ++scrape) {
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const obs::DeltaSnapshot d = reg.SnapshotDelta();
    ASSERT_EQ(d.counters.size(), 1u);
    // uint64 underflow from a non-monotone read would produce a huge delta.
    ASSERT_LT(d.counters[0].delta, 1ULL << 60) << "underflowed delta";
    counter_delta_sum += d.counters[0].delta;
    ASSERT_EQ(d.histograms.size(), 1u);
    const obs::HistogramSnapshot& hd = d.histograms[0].delta;
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : hd.buckets) {
      ASSERT_LT(b, 1ULL << 60) << "underflowed bucket delta";
      bucket_total += b;
    }
    ASSERT_EQ(bucket_total, hd.count) << "torn delta at scrape " << scrape;
    hist_delta_sum += hd.count;
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  // Drain the tail interval, then the per-interval deltas must reconstruct
  // the cumulative totals exactly.
  const obs::DeltaSnapshot tail = reg.SnapshotDelta();
  counter_delta_sum += tail.counters[0].delta;
  hist_delta_sum += tail.histograms[0].delta.count;
  EXPECT_EQ(counter_delta_sum, c->Value());
  EXPECT_EQ(hist_delta_sum, h->Snapshot().count);
  EXPECT_GT(counter_delta_sum, 0u);
}

TEST(Metrics, ThisThreadShardStableWithinThread) {
  const std::size_t a = obs::ThisThreadShard(8);
  const std::size_t b = obs::ThisThreadShard(8);
  EXPECT_EQ(a, b);
  EXPECT_LT(a, 8u);
}

// --- log-linear edge bins ---------------------------------------------------
// The decomposition SLO header leans on Percentile() at the extremes: p99.9
// of a skewed interval often lands exactly on a bucket edge, outliers clamp
// into the overflow bucket, and a quiet interval snapshots with zero samples.
// Pin the behaviour at each edge.

TEST(Histogram, PercentileOnBucketBoundaryStaysInsideBucket) {
  // 999 samples in one bucket, 1 sample in a much higher bucket: the p99.9
  // rank falls exactly on the seam between the two populations. The
  // interpolated answer must come from one of the two occupied buckets —
  // never from the empty space between them.
  obs::Histogram h(1);
  const std::uint64_t low = 100;
  const std::size_t hi_idx = obs::Histogram::BucketIndex(1 << 20);
  const std::uint64_t hi_lo = obs::Histogram::BucketLowerBound(hi_idx);
  for (int i = 0; i < 999; ++i) {
    h.Record(0, low);
  }
  h.Record(0, hi_lo);  // exactly on its bucket's lower boundary
  const obs::HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, 1000u);

  const double p999 = snap.Percentile(99.9);
  const std::size_t low_idx = obs::Histogram::BucketIndex(low);
  const double low_lo =
      static_cast<double>(obs::Histogram::BucketLowerBound(low_idx));
  const double low_hi =
      static_cast<double>(obs::Histogram::BucketUpperBound(low_idx));
  const double hi_hi =
      static_cast<double>(obs::Histogram::BucketUpperBound(hi_idx));
  const bool in_low = p999 >= low_lo && p999 <= low_hi;
  const bool in_hi = p999 >= static_cast<double>(hi_lo) && p999 <= hi_hi;
  EXPECT_TRUE(in_low || in_hi) << "p99.9=" << p999;
  // One rank further must be in (or above the start of) the high bucket.
  EXPECT_GE(snap.Percentile(100.0), static_cast<double>(hi_lo));
  // And the boundary value itself must be counted in its own bucket: the
  // index of hi_lo is hi_idx, not hi_idx - 1.
  EXPECT_EQ(obs::Histogram::BucketIndex(hi_lo), hi_idx);
}

TEST(Histogram, OverflowBucketQuantilesAreFiniteAndOrdered) {
  // Everything near 2^64 clamps into the last bucket; quantiles there must
  // stay finite, ordered, and inside the bucket's [lower, saturated-upper]
  // range rather than overflowing the double math.
  obs::Histogram h(1);
  const std::uint64_t huge = ~std::uint64_t{0} - 1;
  for (int i = 0; i < 8; ++i) {
    h.Record(0, huge);
  }
  h.Record(0, ~std::uint64_t{0});
  const obs::HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, 9u);

  const std::size_t last = obs::Histogram::BucketIndex(~std::uint64_t{0});
  ASSERT_LT(last, obs::Histogram::kBuckets);
  const double lo = static_cast<double>(obs::Histogram::BucketLowerBound(last));
  const double hi = static_cast<double>(obs::Histogram::BucketUpperBound(last));
  for (double p : {50.0, 99.0, 99.9, 100.0}) {
    const double q = snap.Percentile(p);
    EXPECT_TRUE(std::isfinite(q)) << "p" << p;
    EXPECT_GE(q, lo) << "p" << p;
    EXPECT_LE(q, hi) << "p" << p;
  }
  EXPECT_LE(snap.Percentile(50.0), snap.Percentile(99.9));
  // The upper bound of the overflow bucket saturates instead of wrapping.
  EXPECT_GE(obs::Histogram::BucketUpperBound(last),
            obs::Histogram::BucketLowerBound(last));
}

TEST(Histogram, ZeroSampleSnapshotIsInert) {
  // A quiet delta interval produces exactly this snapshot; every consumer
  // (SLO header, Summary, Mean) must get zeros, not NaNs or divide faults.
  obs::Histogram h(2);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.Percentile(50.0), 0.0);
  EXPECT_EQ(snap.Percentile(99.9), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.Summary(), "(no samples)");
  std::uint64_t total = 0;
  for (std::uint64_t b : snap.buckets) {
    total += b;
  }
  EXPECT_EQ(total, 0u);
}

}  // namespace
