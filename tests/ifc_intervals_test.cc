// Interval verification (the §6 future-work verifier): lattice unit tests,
// then end-to-end proofs and refutations over RIL programs — branch
// refinement, loop widening, interprocedural inlining, division-by-zero.
#include "src/ifc/an/intervals.h"

#include <gtest/gtest.h>

#include "src/ifc/checker.h"
#include "src/ifc/ril/interp.h"

namespace ifc {
namespace {

// ---- Interval algebra ------------------------------------------------------

TEST(Interval, BasicAlgebra) {
  const Interval a = Interval::Range(1, 5);
  const Interval b = Interval::Range(-2, 3);
  EXPECT_EQ(a.Add(b), Interval::Range(-1, 8));
  EXPECT_EQ(a.Sub(b), Interval::Range(-2, 7));
  EXPECT_EQ(a.Neg(), Interval::Range(-5, -1));
  EXPECT_EQ(a.Mul(b), Interval::Range(-10, 15));
  EXPECT_EQ(a.Join(b), Interval::Range(-2, 5));
  EXPECT_EQ(a.Meet(b), Interval::Range(1, 3));
}

TEST(Interval, EmptyAndTop) {
  EXPECT_TRUE(Interval::Bottom().IsBottom());
  EXPECT_TRUE(Interval::Top().IsTop());
  EXPECT_TRUE(Interval::Range(5, 3).IsBottom());
  EXPECT_TRUE(Interval::Bottom().Within(Interval::Range(0, 0)))
      << "unreachable values satisfy everything";
  EXPECT_EQ(Interval::Bottom().Join(Interval::Const(7)), Interval::Const(7));
  EXPECT_TRUE(
      Interval::Range(1, 2).Meet(Interval::Range(5, 9)).IsBottom());
}

TEST(Interval, SaturationAtInfinity) {
  const Interval top = Interval::Top();
  EXPECT_EQ(top.Add(Interval::Const(1)), top);
  EXPECT_EQ(top.Neg(), top);
  const Interval big = Interval::Range(1, Interval::kPosInf);
  EXPECT_EQ(big.Mul(Interval::Const(2)).hi, Interval::kPosInf);
  // Near-overflow constants saturate instead of wrapping.
  const Interval huge = Interval::Const(Interval::kPosInf - 1);
  EXPECT_EQ(huge.Add(huge).hi, Interval::kPosInf);
}

TEST(Interval, WidenReachesInfinity) {
  Interval x = Interval::Range(0, 1);
  x = x.Widen(Interval::Range(0, 2));
  EXPECT_EQ(x, Interval::Range(0, Interval::kPosInf));
  x = x.Widen(Interval::Range(-1, 5));
  EXPECT_EQ(x, Interval::Top());
}

// ---- Program-level verification --------------------------------------------

// Runs type check + range verification; returns diagnostics.
ril::Diagnostics RangeCheck(std::string_view src, bool* proved) {
  AnalysisResult result = AnalyzeSource(src);
  EXPECT_TRUE(result.type_ok) << result.diags.ToString();
  ril::Diagnostics diags;
  *proved = VerifyRanges(result.program, &diags);
  return diags;
}

TEST(RangeVerify, ConstantsProvable) {
  bool proved = false;
  RangeCheck(R"(
    fn main() {
      let x = 4;
      let y = x * 2 + 1;
      let ok = check_range(y, 9, 9);
    }
  )",
             &proved);
  EXPECT_TRUE(proved);
}

TEST(RangeVerify, ViolationRefuted) {
  bool proved = false;
  ril::Diagnostics d = RangeCheck(R"(
    fn main() {
      let x = 100;
      let ok = check_range(x, 0, 50);
    }
  )",
                                  &proved);
  EXPECT_FALSE(proved);
  EXPECT_TRUE(d.Contains(ril::Phase::kIfc, "cannot prove range"))
      << d.ToString();
}

TEST(RangeVerify, BranchRefinement) {
  bool proved = false;
  RangeCheck(R"(
    fn clamp_demo(x: int) -> int {
      if x < 0 {
        return 0;
      }
      if x > 100 {
        return 100;
      }
      return check_range(x, 0, 100);   // provable: both branches returned
    }
    fn main() {
      let a = clamp_demo(12345);
      let b = check_range(a, 0, 100);  // provable via return-interval join
    }
  )",
             &proved);
  EXPECT_TRUE(proved);
}

TEST(RangeVerify, ElseBranchRefines) {
  bool proved = false;
  RangeCheck(R"(
    fn main() {
      let mut x = 7;
      if x >= 10 {
        x = 0;
      } else {
        let ok = check_range(x, -9223372036854775807, 9);
      }
    }
  )",
             &proved);
  EXPECT_TRUE(proved);
}

TEST(RangeVerify, LoopWideningStillBoundsBelow) {
  bool proved = false;
  // i grows without a provable upper bound pre-exit, but stays >= 0 — and
  // after the loop the negated condition bounds it above.
  RangeCheck(R"(
    fn main() {
      let mut i = 0;
      while i < 10 {
        let in_loop = check_range(i, 0, 9);
        i = i + 1;
      }
      let after = check_range(i, 0, 9223372036854775807);
    }
  )",
             &proved);
  EXPECT_TRUE(proved);
}

TEST(RangeVerify, LoopBodyViolationFound) {
  bool proved = false;
  ril::Diagnostics d = RangeCheck(R"(
    fn main() {
      let mut i = 0;
      while i < 10 {
        let bad = check_range(i, 0, 3);   // fails once i reaches 4
        i = i + 1;
      }
    }
  )",
                                  &proved);
  EXPECT_FALSE(proved);
  EXPECT_TRUE(d.Contains(ril::Phase::kIfc, "cannot prove range"));
}

TEST(RangeVerify, DivisionByZeroRefutedAndProved) {
  bool proved = false;
  ril::Diagnostics d = RangeCheck(R"(
    fn main() {
      let mut x = 0;
      let y = 10 / x;
    }
  )",
                                  &proved);
  EXPECT_FALSE(proved);
  EXPECT_TRUE(d.Contains(ril::Phase::kIfc, "divisor"));

  bool proved2 = false;
  RangeCheck(R"(
    fn main() {
      let mut x = 5;
      if x > 0 {
        let y = 10 / x;   // provable: x in [1, +inf]
      }
    }
  )",
             &proved2);
  EXPECT_TRUE(proved2);
}

TEST(RangeVerify, CheckRangeRefinesDownstream) {
  bool proved = false;
  RangeCheck(R"(
    fn main() {
      let mut x = 0;
      let mut i = 0;
      while i < 3 {
        x = x + i;
        i = i + 1;
      }
      let bounded = check_range(0 - 1, -1, -1);
      let refined = check_range(x, 0, 1000000) + 1;  // not provable? see below
    }
  )",
             &proved);
  // x is widened to [0, +inf] inside the loop, so the second check is NOT
  // provable — this documents the precision limit of plain widening.
  EXPECT_FALSE(proved);
}

TEST(RangeVerify, InterproceduralReturnIntervals) {
  bool proved = false;
  RangeCheck(R"(
    fn dice() -> int {
      return 4;   // chosen by fair dice roll
    }
    fn double_it(x: int) -> int {
      return x * 2;
    }
    fn main() {
      let d = double_it(dice());
      let ok = check_range(d, 8, 8);
    }
  )",
             &proved);
  EXPECT_TRUE(proved);
}

TEST(RangeVerify, LenIsNonNegative) {
  bool proved = false;
  RangeCheck(R"(
    fn main() {
      let v = vec![1, 2, 3];
      let n = len(&v);
      let ok = check_range(n, 0, 9223372036854775807);
    }
  )",
             &proved);
  EXPECT_TRUE(proved);
}

TEST(RangeVerify, NonLiteralBoundsDiagnosed) {
  bool proved = false;
  ril::Diagnostics d = RangeCheck(R"(
    fn main() {
      let x = 1;
      let bound = 5;
      let ok = check_range(x, 0, bound);
    }
  )",
                                  &proved);
  EXPECT_FALSE(proved);
  EXPECT_TRUE(d.Contains(ril::Phase::kIfc, "integer literals"));
}

// ---- Runtime agreement -----------------------------------------------------

TEST(RangeVerify, RuntimeEnforcementMatches) {
  // A program the verifier refutes also fails at runtime on the violating
  // input; a proved program never trips the runtime check.
  AnalysisResult bad = AnalyzeSource(
      "fn main() { let x = 100; let ok = check_range(x, 0, 50); }");
  ASSERT_TRUE(bad.type_ok);
  ril::Diagnostics run_diags;
  ril::Interpreter interp(&bad.program, &run_diags);
  EXPECT_FALSE(interp.Run());
  EXPECT_TRUE(run_diags.Contains(ril::Phase::kRuntime, "check_range failed"));

  AnalysisResult good = AnalyzeSource(
      "fn main() { let x = 10; let ok = check_range(x, 0, 50); "
      "emit(stdout, ok); }");
  ril::Diagnostics good_diags;
  ril::Interpreter good_interp(&good.program, &good_diags);
  EXPECT_TRUE(good_interp.Run());
  EXPECT_EQ(good_interp.outputs()[0].rendered, "10");
}

}  // namespace
}  // namespace ifc
