// Pretty-printer round-trip property: for any program P,
// print(parse(print(parse(P)))) == print(parse(P)) — i.e. printing reaches a
// fixpoint after one round — and the reprinted program has identical
// verification verdicts. Run over every RIL program in the test corpus plus
// generated ones.
#include "src/ifc/ril/printer.h"

#include <gtest/gtest.h>

#include <string>

#include "src/ifc/checker.h"
#include "src/ifc/programs.h"
#include "src/ifc/ril/parser.h"

namespace ril {
namespace {

void ExpectRoundTrip(std::string_view source) {
  Diagnostics d1;
  Program p1 = Parser::Parse(source, &d1);
  ASSERT_FALSE(d1.HasErrors()) << d1.ToString();
  const std::string s1 = PrintProgram(p1);

  Diagnostics d2;
  Program p2 = Parser::Parse(s1, &d2);
  ASSERT_FALSE(d2.HasErrors())
      << "printer emitted unparseable output:\n" << s1 << d2.ToString();
  const std::string s2 = PrintProgram(p2);
  EXPECT_EQ(s1, s2) << "print/parse did not reach a fixpoint";

  // Verification verdicts are preserved.
  ifc::AnalysisResult r1 = ifc::AnalyzeSource(source);
  ifc::AnalysisResult r2 = ifc::AnalyzeSource(s1);
  EXPECT_EQ(r1.type_ok, r2.type_ok);
  EXPECT_EQ(r1.ownership_ok, r2.ownership_ok);
  EXPECT_EQ(r1.ifc_ok, r2.ifc_ok);
}

TEST(Printer, SecureStore) { ExpectRoundTrip(ifc::kSecureStoreSource); }

TEST(Printer, SeededBugStore) {
  ExpectRoundTrip(ifc::kSecureStoreSeededBug);
}

TEST(Printer, GeneratedLayeredPrograms) {
  for (int depth : {2, 5, 9}) {
    ExpectRoundTrip(ifc::GenerateLayeredProgram(depth, 2));
  }
}

TEST(Printer, AllSyntaxForms) {
  ExpectRoundTrip(R"(
    sink out: {a, b};
    struct S { v: vec, n: int, f: bool }
    fn helper(x: &mut S, y: &vec, z: vec) -> int {
      append(&mut x.v, z);
      x.n = x.n + len(&y);
      return x.n;
    }
    fn main() {
      #[label(a)]
      let mut s = S { v: vec![], n: 0, f: true };
      #[label()]
      let data = vec![1, 2, 3];
      let aux = vec![9];
      let n = helper(&mut s, &aux, data);
      let mut i = 0 - 5;
      while i < n {
        if i % 2 == 0 && s.f {
          i = i + 2;
        } else if !s.f {
          i = i + 1;
        } else {
          i = i + 3;
        }
      }
      assert_label(n, {a, b});
      emit(out, s.v);
      emit(out, s.v[0]);
      emit(stdout, i == n || i > n);
    }
  )");
}

TEST(Printer, PrecedencePreservedByParens) {
  Diagnostics diags;
  Program p = Parser::Parse("fn main() { let x = 1 + 2 * 3 - 4; }", &diags);
  ASSERT_FALSE(diags.HasErrors());
  const auto* let = p.functions[0].body.stmts[0]->As<LetStmt>();
  EXPECT_EQ(PrintExpr(*let->init), "((1 + (2 * 3)) - 4)");
}

TEST(Printer, TypesRender) {
  EXPECT_EQ(PrintType(Type::Int()), "int");
  EXPECT_EQ(PrintType(Type::Vec()), "vec");
  EXPECT_EQ(PrintType(Type::Struct("Buffer")), "Buffer");
  Type ref = Type::Vec();
  ref.ref = RefKind::kMut;
  EXPECT_EQ(PrintType(ref), "&mut vec");
  Type shared = Type::Vec();
  shared.ref = RefKind::kShared;
  EXPECT_EQ(PrintType(shared), "&vec");
}

}  // namespace
}  // namespace ril
