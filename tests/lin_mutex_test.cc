#include "src/lin/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/lin/cell.h"
#include "src/util/panic.h"

namespace lin {
namespace {

TEST(Mutex, DataOnlyReachableThroughGuard) {
  Mutex<int> m(5);
  {
    auto g = m.Lock();
    EXPECT_EQ(*g, 5);
    *g = 6;
  }
  EXPECT_EQ(*m.Lock(), 6);
}

TEST(Mutex, MutualExclusionUnderContention) {
  Mutex<long> counter(0);
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 50000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) {
        auto g = counter.Lock();
        *g += 1;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(*counter.Lock(), static_cast<long>(kThreads) * kIters);
}

TEST(Mutex, PanicWhileHeldPoisons) {
  Mutex<int> m(1);
  try {
    auto g = m.Lock();
    *g = 999;  // half-finished update
    util::Panic("boom");
  } catch (const util::PanicError&) {
  }
  EXPECT_TRUE(m.IsPoisoned());
  EXPECT_THROW((void)m.Lock(), util::PanicError);
  try {
    (void)m.Lock();
  } catch (const util::PanicError& e) {
    EXPECT_EQ(e.kind(), util::PanicKind::kPoisoned);
  }
}

TEST(Mutex, LockClearPoisonRecovers) {
  Mutex<int> m(1);
  try {
    auto g = m.Lock();
    util::Panic("boom");
  } catch (const util::PanicError&) {
  }
  ASSERT_TRUE(m.IsPoisoned());
  {
    auto g = m.LockClearPoison();
    *g = 0;  // recovery path reinitializes
  }
  EXPECT_FALSE(m.IsPoisoned());
  EXPECT_EQ(*m.Lock(), 0);
}

TEST(Mutex, NormalUnlockDoesNotPoison) {
  Mutex<int> m(1);
  {
    auto g = m.Lock();
  }
  EXPECT_FALSE(m.IsPoisoned());
}

TEST(Cell, GetSetReplace) {
  Cell<int> c(3);
  EXPECT_EQ(c.Get(), 3);
  c.Set(4);
  EXPECT_EQ(c.Get(), 4);
  EXPECT_EQ(c.Replace(5), 4);
  EXPECT_EQ(c.Get(), 5);
}

TEST(Cell, UpdateAppliesFunction) {
  Cell<int> c(10);
  c.Update([](int v) { return v * 2; });
  EXPECT_EQ(c.Get(), 20);
}

TEST(Cell, WorksThroughConstReference) {
  const Cell<int> c(1);
  c.Set(2);  // interior mutability: legal despite const
  EXPECT_EQ(c.Get(), 2);
}

}  // namespace
}  // namespace lin
