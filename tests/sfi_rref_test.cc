// Remote-reference semantics from §3: mediation through the reference table,
// borrow-for-the-duration argument passing, ownership transfer, revocation,
// policy interception, and fault conversion — including the paper's own
// usage listing transcribed at the end.
#include "src/sfi/rref.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/lin/own.h"
#include "src/sfi/manager.h"
#include "src/sfi/policy.h"
#include "src/util/panic.h"

namespace sfi {
namespace {

struct Counter {
  int value = 0;
  int Increment() { return ++value; }
};

TEST(RRef, CallBorrowsRemoteObject) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  RRef<Counter> rref = d.Export(Counter{});
  for (int i = 1; i <= 5; ++i) {
    auto r = rref.Call([](Counter& c) { return c.Increment(); });
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), i) << "state persists across invocations";
  }
  EXPECT_EQ(d.stats().calls_ok, 5u);
}

TEST(RRef, CallRunsInOwnersDomainContext) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  RRef<Counter> rref = d.Export(Counter{});
  auto r = rref.Call([](Counter&) { return ScopedDomain::Current(); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), d.id());
  EXPECT_EQ(ScopedDomain::Current(), kRootDomain);
}

TEST(RRef, VoidCall) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  RRef<Counter> rref = d.Export(Counter{});
  auto r = rref.Call([](Counter& c) { c.value = 9; });
  EXPECT_TRUE(r.ok());
  auto check = rref.Call([](Counter& c) { return c.value; });
  EXPECT_EQ(check.value(), 9);
}

// Owned arguments change ownership permanently (paper: "all other arguments
// change their ownership permanently").
TEST(RRef, OwnedArgumentTransfersPermanently) {
  DomainManager mgr;
  Domain& d = mgr.Create("sink");
  struct Sink {
    std::vector<lin::Own<std::string>> received;
  };
  RRef<Sink> rref = d.Export(Sink{});

  auto msg = lin::Make<std::string>("payload");
  auto r = rref.Call([m = std::move(msg)](Sink& s) mutable {
    s.received.push_back(std::move(m));
  });
  ASSERT_TRUE(r.ok());
  // The sender's handle is consumed: any use panics (zero-copy isolation).
  EXPECT_THROW((void)*msg, util::PanicError);
  auto len = rref.Call(
      [](Sink& s) { return s.received.back().Borrow()->size(); });
  EXPECT_EQ(len.value(), 7u);
}

TEST(RRef, RevocationMakesCallsFail) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  RRef<Counter> rref = d.Export(Counter{});
  ASSERT_TRUE(rref.IsLive());
  ASSERT_TRUE(d.Revoke(rref.slot()));
  EXPECT_FALSE(rref.IsLive());
  auto r = rref.Call([](Counter& c) { return c.value; });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), CallError::kRevoked);
  EXPECT_FALSE(d.Revoke(rref.slot())) << "double revoke reports false";
}

TEST(RRef, RevokingOneLeavesOthersLive) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  RRef<Counter> a = d.Export(Counter{});
  RRef<Counter> b = d.Export(Counter{});
  d.Revoke(a.slot());
  EXPECT_FALSE(a.IsLive());
  EXPECT_TRUE(b.IsLive());
  EXPECT_TRUE(b.Call([](Counter& c) { return c.Increment(); }).ok());
}

TEST(RRef, EmptyRRefReportsRevoked) {
  RRef<Counter> empty;
  EXPECT_FALSE(empty.IsLive());
  auto r = empty.Call([](Counter& c) { return c.value; });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), CallError::kRevoked);
}

// The paper's listing: panic inside the callee -> Err to the caller, domain
// failed; recovery re-populates the table making the failure transparent.
TEST(RRef, PanicDuringCallReturnsFaultAndFailsDomain) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  RRef<Counter> rref = d.Export(Counter{});
  auto r = rref.Call([](Counter&) -> int {
    util::Panic(util::PanicKind::kBoundsCheck, "index 12 out of range");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), CallError::kFault);
  EXPECT_EQ(d.state(), DomainState::kFailed);
  EXPECT_EQ(ScopedDomain::Current(), kRootDomain) << "stack unwound to entry";

  // While failed: calls through still-live rrefs report domain failure.
  auto blocked = rref.Call([](Counter& c) { return c.value; });
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.error(), CallError::kDomainFailed);
}

TEST(RRef, TransparentRecoveryViaManager) {
  DomainManager mgr;
  Domain& d = mgr.Create("svc");
  // The service publishes its rref through a location clients re-read; the
  // recovery function re-populates it, making the failure transparent.
  RRef<Counter> published = d.Export(Counter{});
  d.SetRecovery([&published](Domain& self) {
    published = self.Export(Counter{});
  });

  (void)published.Call([](Counter&) -> int { util::Panic("crash"); });
  ASSERT_EQ(d.state(), DomainState::kFailed);
  ASSERT_EQ(mgr.RecoverAllFailed(), 1u);

  auto r = published.Call([](Counter& c) { return c.Increment(); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1) << "fresh state after recovery";
}

TEST(RRef, PolicyDeniesByCaller) {
  DomainManager mgr;
  Domain& server = mgr.Create("server");
  Domain& friendly = mgr.Create("friend");
  Domain& hostile = mgr.Create("hostile");
  server.SetPolicy(AllowCallers({friendly.id()}));
  RRef<Counter> rref = server.Export(Counter{});

  auto from_friend = friendly.Execute([&] {
    return rref.Call([](Counter& c) { return c.Increment(); });
  });
  ASSERT_TRUE(from_friend.ok());
  EXPECT_TRUE(from_friend.value().ok());

  auto from_hostile = hostile.Execute([&] {
    return rref.Call([](Counter& c) { return c.Increment(); });
  });
  ASSERT_TRUE(from_hostile.ok());
  ASSERT_FALSE(from_hostile.value().ok());
  EXPECT_EQ(from_hostile.value().error(), CallError::kAccessDenied);
  EXPECT_EQ(server.stats().calls_denied, 1u);
}

TEST(RRef, PolicyDeniesByMethod) {
  DomainManager mgr;
  Domain& server = mgr.Create("server");
  server.SetPolicy(AllowMethods({"read"}));
  RRef<Counter> rref = server.Export(Counter{});

  auto read = rref.Call([](Counter& c) { return c.value; }, "read");
  EXPECT_TRUE(read.ok());
  auto write = rref.Call([](Counter& c) { return c.Increment(); }, "write");
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.error(), CallError::kAccessDenied);
  auto anon = rref.Call([](Counter& c) { return c.value; });
  EXPECT_FALSE(anon.ok()) << "allow-list denies unnamed methods";
}

TEST(RRef, CombinedPolicy) {
  DomainManager mgr;
  Domain& server = mgr.Create("server");
  Domain& caller = mgr.Create("caller");
  server.SetPolicy(Both(AllowCallers({caller.id()}), AllowMethods({"read"})));
  RRef<Counter> rref = server.Export(Counter{});
  auto ok = caller.Execute(
      [&] { return rref.Call([](Counter& c) { return c.value; }, "read"); });
  EXPECT_TRUE(ok.value().ok());
  auto bad_method = caller.Execute(
      [&] { return rref.Call([](Counter& c) { return c.value; }, "write"); });
  EXPECT_FALSE(bad_method.value().ok());
}

// Transcription of the paper's §3 usage listing.
TEST(RRef, PaperListing) {
  DomainManager mgr;
  /* Inside domain manager: */
  Domain& d = mgr.Create("pd");  // create a PD
  // create an object inside PD and wrap it in RRef
  auto exported = d.Execute([&d] { return d.Export(Counter{}); });
  ASSERT_TRUE(exported.ok());
  RRef<Counter> rref = std::move(exported).value();

  /* Invoke rref from another PD: */
  auto result = rref.Call([](Counter& c) { return c.Increment(); },
                          "method1");
  if (result.ok()) {
    EXPECT_EQ(result.value(), 1);  // "Result: 1"
  } else {
    FAIL() << "method1() failed";
  }
}

}  // namespace
}  // namespace sfi
