// Lattice laws for the IFC label domain — the soundness of the whole §4
// analysis rests on these, so they are checked as properties over random
// labels, not just examples.
#include "src/ifc/an/label.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/panic.h"
#include "src/util/rng.h"

namespace ifc {
namespace {

Label RandomLabel(util::Rng& rng) {
  Label l;
  l.tags = rng.Next() & 0xffff;  // 16 principals is plenty
  l.params = rng.Next() & 0xff;
  return l;
}

class LabelLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LabelLaws, JoinSemilattice) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Label a = RandomLabel(rng);
    const Label b = RandomLabel(rng);
    const Label c = RandomLabel(rng);
    // Idempotent, commutative, associative.
    EXPECT_EQ(a.Join(a), a);
    EXPECT_EQ(a.Join(b), b.Join(a));
    EXPECT_EQ(a.Join(b).Join(c), a.Join(b.Join(c)));
    // Bottom is the identity.
    EXPECT_EQ(a.Join(Label::Bottom()), a);
  }
}

TEST_P(LabelLaws, FlowsToIsAPartialOrder) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Label a = RandomLabel(rng);
    const Label b = RandomLabel(rng);
    const Label c = RandomLabel(rng);
    EXPECT_TRUE(a.FlowsTo(a)) << "reflexive";
    if (a.FlowsTo(b) && b.FlowsTo(a)) {
      EXPECT_EQ(a, b) << "antisymmetric";
    }
    if (a.FlowsTo(b) && b.FlowsTo(c)) {
      EXPECT_TRUE(a.FlowsTo(c)) << "transitive";
    }
  }
}

TEST_P(LabelLaws, JoinIsLeastUpperBound) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Label a = RandomLabel(rng);
    const Label b = RandomLabel(rng);
    const Label j = a.Join(b);
    EXPECT_TRUE(a.FlowsTo(j));
    EXPECT_TRUE(b.FlowsTo(j));
    // Least: any other upper bound is above the join.
    const Label u = j.Join(RandomLabel(rng));
    if (a.FlowsTo(u) && b.FlowsTo(u)) {
      EXPECT_TRUE(j.FlowsTo(u));
    }
  }
}

TEST_P(LabelLaws, BottomFlowsEverywhere) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(Label::Bottom().FlowsTo(RandomLabel(rng)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelLaws, ::testing::Values(1, 7, 42, 99));

TEST(TagTable, InternIsStable) {
  TagTable table;
  const int alice = table.Intern("alice");
  const int bob = table.Intern("bob");
  EXPECT_NE(alice, bob);
  EXPECT_EQ(table.Intern("alice"), alice) << "re-intern returns same bit";
  EXPECT_EQ(table.size(), 2u);
}

TEST(TagTable, LabelOfJoinsTags) {
  TagTable table;
  Label l = table.LabelOf({"a", "b", "a"});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.LabelOf({"a"}).FlowsTo(l));
  EXPECT_TRUE(table.LabelOf({"b"}).FlowsTo(l));
  EXPECT_FALSE(l.FlowsTo(table.LabelOf({"a"})));
}

TEST(TagTable, RenderIsReadable) {
  TagTable table;
  EXPECT_EQ(table.Render(Label::Bottom()), "{}");
  Label l = table.LabelOf({"alice", "bob"});
  EXPECT_EQ(table.Render(l), "{alice, bob}");
  Label p = Label::OfParam(3);
  EXPECT_EQ(table.Render(p), "{param#3}");
}

TEST(TagTable, OverflowPanics) {
  TagTable table;
  for (int i = 0; i < 64; ++i) {
    table.Intern("p" + std::to_string(i));
  }
  EXPECT_THROW(table.Intern("one-too-many"), util::PanicError);
}

}  // namespace
}  // namespace ifc
