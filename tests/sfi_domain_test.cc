#include "src/sfi/domain.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/panic.h"

namespace sfi {
namespace {

TEST(ScopedDomain, NestsAndRestores) {
  EXPECT_EQ(ScopedDomain::Current(), kRootDomain);
  {
    ScopedDomain outer(7);
    EXPECT_EQ(ScopedDomain::Current(), 7u);
    {
      ScopedDomain inner(9);
      EXPECT_EQ(ScopedDomain::Current(), 9u);
    }
    EXPECT_EQ(ScopedDomain::Current(), 7u);
  }
  EXPECT_EQ(ScopedDomain::Current(), kRootDomain);
}

TEST(ScopedDomain, RestoredAcrossUnwind) {
  try {
    ScopedDomain enter(5);
    util::Panic("inside domain 5");
  } catch (const util::PanicError&) {
  }
  EXPECT_EQ(ScopedDomain::Current(), kRootDomain);
}

TEST(ScopedDomain, PerThreadIdentity) {
  ScopedDomain enter(3);
  DomainId seen_in_thread = 999;
  std::thread t([&] { seen_in_thread = ScopedDomain::Current(); });
  t.join();
  EXPECT_EQ(seen_in_thread, kRootDomain)
      << "a fresh thread starts in the root domain";
  EXPECT_EQ(ScopedDomain::Current(), 3u);
}

TEST(Domain, ExecuteRunsInsideDomain) {
  Domain d(4, "worker");
  auto result = d.Execute([] { return ScopedDomain::Current(); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 4u);
  EXPECT_EQ(ScopedDomain::Current(), kRootDomain);
}

TEST(Domain, ExecuteVoidResult) {
  Domain d(1, "v");
  int side_effect = 0;
  auto result = d.Execute([&] { side_effect = 42; });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(side_effect, 42);
}

TEST(Domain, PanicInExecuteBecomesFaultError) {
  Domain d(2, "faulty");
  auto result = d.Execute([]() -> int { util::Panic("bug"); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), CallError::kFault);
  EXPECT_EQ(d.state(), DomainState::kFailed);
  EXPECT_EQ(d.stats().faults, 1u);
}

TEST(Domain, FailedDomainRefusesEntryUntilRecovered) {
  Domain d(2, "faulty");
  (void)d.Execute([]() -> int { util::Panic("bug"); });
  auto blocked = d.Execute([] { return 1; });
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.error(), CallError::kDomainFailed);

  d.Recover();
  EXPECT_EQ(d.state(), DomainState::kRunning);
  auto after = d.Execute([] { return 1; });
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(d.stats().recoveries, 1u);
}

TEST(Domain, RecoveryFunctionRunsInsideDomainAndCanReExport) {
  Domain d(6, "svc");
  RRef<std::string> replacement;
  d.SetRecovery([&replacement](Domain& self) {
    EXPECT_EQ(ScopedDomain::Current(), self.id());
    replacement = self.Export(std::string("fresh"));
  });
  (void)d.Execute([]() -> int { util::Panic("crash"); });
  d.Recover();
  ASSERT_TRUE(replacement.IsLive());
  auto got = replacement.Call([](std::string& s) { return s; });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "fresh");
}

TEST(Domain, RecoveryClearsRefTable) {
  Domain d(6, "svc");
  auto rref = d.Export(std::string("old"));
  EXPECT_EQ(d.ref_table().size(), 1u);
  d.Recover();
  EXPECT_EQ(d.ref_table().size(), 0u);
  EXPECT_FALSE(rref.IsLive()) << "old rrefs must not survive recovery";
}

TEST(Domain, RetireIsTerminal) {
  Domain d(8, "old");
  auto rref = d.Export(42);
  d.Retire();
  EXPECT_EQ(d.state(), DomainState::kRetired);
  EXPECT_FALSE(rref.IsLive());
  auto res = d.Execute([] { return 0; });
  EXPECT_FALSE(res.ok());
}

TEST(DomainManager, CreateFindRoundTrip) {
  DomainManager mgr;
  Domain& a = mgr.Create("a");
  Domain& b = mgr.Create("b");
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(mgr.Find(a.id()), &a);
  EXPECT_EQ(mgr.Find(b.id()), &b);
  EXPECT_EQ(mgr.Find(kRootDomain), nullptr);
  EXPECT_EQ(mgr.Find(999), nullptr);
  EXPECT_EQ(mgr.domain_count(), 2u);
}

TEST(DomainManager, RecoverAllFailedTouchesOnlyFailed) {
  DomainManager mgr;
  Domain& ok_domain = mgr.Create("fine");
  Domain& bad1 = mgr.Create("bad1");
  Domain& bad2 = mgr.Create("bad2");
  (void)bad1.Execute([]() -> int { util::Panic("x"); });
  (void)bad2.Execute([]() -> int { util::Panic("y"); });
  EXPECT_EQ(mgr.RecoverAllFailed(), 2u);
  EXPECT_EQ(ok_domain.stats().recoveries, 0u);
  EXPECT_EQ(bad1.state(), DomainState::kRunning);
  EXPECT_EQ(bad2.state(), DomainState::kRunning);
}

TEST(Domain, PanicInRecoveryFunctionIsContained) {
  Domain d(7, "svc");
  int attempts = 0;
  d.SetRecovery([&attempts](Domain&) {
    ++attempts;
    if (attempts < 3) {
      util::Panic("recovery itself crashed");
    }
  });
  (void)d.Execute([]() -> int { util::Panic("crash"); });

  // Two failing recoveries: each is contained (no escape to the caller),
  // counted, and leaves the domain Failed so it can be retried.
  EXPECT_FALSE(d.Recover());
  EXPECT_FALSE(d.Recover());
  EXPECT_EQ(d.state(), DomainState::kFailed);
  EXPECT_EQ(d.stats().recovery_panics, 2u);
  EXPECT_EQ(d.stats().recoveries, 0u);

  // Third attempt succeeds and the domain is usable again.
  EXPECT_TRUE(d.Recover());
  EXPECT_EQ(d.state(), DomainState::kRunning);
  EXPECT_EQ(d.stats().recoveries, 1u);
  EXPECT_TRUE(d.Execute([] { return 1; }).ok());
}

TEST(DomainManager, RecoverAllFailedContainsRecoveryPanics) {
  DomainManager mgr;
  Domain& bad = mgr.Create("bad");
  bad.SetRecovery([](Domain&) { util::Panic("recovery crashed"); });
  (void)bad.Execute([]() -> int { util::Panic("x"); });

  // Must not throw out of the manager, must not count the failed attempt
  // as a recovery, and must leave the domain Failed for the next pass.
  EXPECT_EQ(mgr.RecoverAllFailed(), 0u);
  EXPECT_EQ(bad.state(), DomainState::kFailed);
  EXPECT_EQ(mgr.AggregateStats().recovery_panics, 1u);
}

TEST(DomainManager, RecoverRefusesRetired) {
  DomainManager mgr;
  Domain& d = mgr.Create("done");
  mgr.Retire(d);
  EXPECT_FALSE(mgr.Recover(d));
}

TEST(DomainManager, AggregateStatsSums) {
  DomainManager mgr;
  Domain& a = mgr.Create("a");
  Domain& b = mgr.Create("b");
  (void)a.Execute([] { return 1; });
  (void)a.Execute([] { return 1; });
  (void)b.Execute([]() -> int { util::Panic("z"); });
  DomainStats total = mgr.AggregateStats();
  EXPECT_EQ(total.calls_ok, 2u);
  EXPECT_EQ(total.faults, 1u);
}

TEST(Names, ErrorAndStateNames) {
  EXPECT_EQ(CallErrorName(CallError::kRevoked), "revoked");
  EXPECT_EQ(CallErrorName(CallError::kFault), "fault");
  EXPECT_EQ(DomainStateName(DomainState::kRunning), "running");
  EXPECT_EQ(DomainStateName(DomainState::kRetired), "retired");
}

}  // namespace
}  // namespace sfi
