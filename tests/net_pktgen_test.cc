#include "src/net/pktgen.h"

#include <gtest/gtest.h>

#include <map>

#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/util/panic.h"

namespace net {
namespace {

PktSourceConfig SmallConfig() {
  PktSourceConfig cfg;
  cfg.flow_count = 16;
  cfg.frame_len = 64;
  cfg.seed = 42;
  return cfg;
}

TEST(PktSource, DeliversRequestedBurst) {
  Mempool pool(64, 2048);
  PktSource src(&pool, SmallConfig());
  PacketBatch batch;
  EXPECT_EQ(src.RxBurst(batch, 32), 32u);
  EXPECT_EQ(batch.size(), 32u);
  EXPECT_EQ(src.packets_generated(), 32u);
}

TEST(PktSource, ShortBurstWhenPoolDry) {
  Mempool pool(8, 2048);
  PktSource src(&pool, SmallConfig());
  PacketBatch batch;
  EXPECT_EQ(src.RxBurst(batch, 32), 8u) << "rx_burst semantics: deliver fewer";
  EXPECT_EQ(batch.size(), 8u);
}

TEST(PktSource, FramesAreWellFormed) {
  Mempool pool(64, 2048);
  PktSource src(&pool, SmallConfig());
  PacketBatch batch;
  src.RxBurst(batch, 16);
  for (PacketBuf& pkt : batch) {
    EXPECT_EQ(InternetChecksum(pkt.ipv4(), sizeof(Ipv4Hdr)), 0);
    const FiveTuple t = pkt.Tuple();
    EXPECT_EQ(t.dst_ip, 0xc0a80001u) << "all flows hit the VIP";
    EXPECT_EQ(t.dst_port, 80);
    EXPECT_EQ(t.proto, Ipv4Hdr::kProtoUdp);
    EXPECT_EQ((t.src_ip >> 24), 0x0au) << "clients in 10/8";
  }
}

TEST(PktSource, DeterministicForSeed) {
  Mempool pool_a(64, 2048);
  Mempool pool_b(64, 2048);
  PktSource a(&pool_a, SmallConfig());
  PktSource b(&pool_b, SmallConfig());
  PacketBatch batch_a, batch_b;
  a.RxBurst(batch_a, 32);
  b.RxBurst(batch_b, 32);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(batch_a[i].Tuple(), batch_b[i].Tuple());
  }
}

TEST(PktSource, UniformTrafficCoversFlows) {
  Mempool pool(4096, 2048);
  PktSourceConfig cfg = SmallConfig();
  cfg.flow_count = 8;
  PktSource src(&pool, cfg);
  std::map<std::uint32_t, int> seen;
  PacketBatch batch;
  src.RxBurst(batch, 2000);
  for (PacketBuf& pkt : batch) {
    seen[pkt.Tuple().src_ip]++;
  }
  EXPECT_EQ(seen.size(), 8u) << "every flow appears";
  for (const auto& [ip, count] : seen) {
    EXPECT_NEAR(count, 250, 100) << "roughly uniform";
  }
}

TEST(PktSource, ZipfTrafficIsSkewed) {
  Mempool pool(4096, 2048);
  PktSourceConfig cfg = SmallConfig();
  cfg.flow_count = 64;
  cfg.zipf_s = 1.1;
  PktSource src(&pool, cfg);
  std::map<std::uint32_t, int> seen;
  PacketBatch batch;
  src.RxBurst(batch, 4000);
  for (PacketBuf& pkt : batch) {
    seen[pkt.Tuple().src_ip]++;
  }
  const int hottest = seen[src.FlowAt(0).src_ip];
  EXPECT_GT(hottest, 4000 / 64 * 4)
      << "rank-1 flow must be far above the uniform share";
}

TEST(PktSource, CustomTtlAndFrameLen) {
  Mempool pool(8, 2048);
  PktSourceConfig cfg = SmallConfig();
  cfg.ttl = 3;
  cfg.frame_len = 512;
  PktSource src(&pool, cfg);
  PacketBatch batch;
  src.RxBurst(batch, 1);
  EXPECT_EQ(batch[0].ipv4()->ttl, 3);
  EXPECT_EQ(batch[0].length(), 512);
}

TEST(PktSource, RejectsDegenerateConfigs) {
  Mempool pool(8, 2048);
  PktSourceConfig no_flows = SmallConfig();
  no_flows.flow_count = 0;
  EXPECT_THROW(PktSource(&pool, no_flows), util::PanicError);
  PktSourceConfig tiny = SmallConfig();
  tiny.frame_len = 10;
  EXPECT_THROW(PktSource(&pool, tiny), util::PanicError);
}

}  // namespace
}  // namespace net
