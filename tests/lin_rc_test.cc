#include "src/lin/rc.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/util/panic.h"

namespace lin {
namespace {

TEST(Rc, MakeAndRead) {
  auto r = Rc<std::string>::Make("shared");
  EXPECT_EQ(*r, "shared");
  EXPECT_EQ(r->size(), 6u);
  EXPECT_EQ(r.StrongCount(), 1u);
}

TEST(Rc, CopyIncrementsCount) {
  auto a = Rc<int>::Make(7);
  Rc<int> b = a;
  Rc<int> c = b;
  EXPECT_EQ(a.StrongCount(), 3u);
  EXPECT_TRUE(a.SameObject(c));
  EXPECT_EQ(*c, 7);
}

TEST(Rc, DropDecrementsAndFrees) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  {
    auto a = Rc<Counted>::Make();
    {
      Rc<Counted> b = a;
      EXPECT_EQ(live, 1);
    }
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(Rc, MoveDoesNotChangeCount) {
  auto a = Rc<int>::Make(1);
  Rc<int> b = a;
  Rc<int> c = std::move(a);
  EXPECT_EQ(c.StrongCount(), 2u);
  EXPECT_FALSE(a.has_value());
  EXPECT_THROW((void)*a, util::PanicError);
}

TEST(Rc, SelfAssignmentSafe) {
  auto a = Rc<int>::Make(9);
  a = *&a;
  EXPECT_EQ(*a, 9);
  EXPECT_EQ(a.StrongCount(), 1u);
}

TEST(Rc, GetMutOnlyWhenUnique) {
  auto a = Rc<int>::Make(1);
  ASSERT_NE(a.GetMutIfUnique(), nullptr);
  *a.GetMutIfUnique() = 2;
  Rc<int> b = a;
  EXPECT_EQ(a.GetMutIfUnique(), nullptr) << "aliased: mutation must refuse";
  b = Rc<int>();
  EXPECT_EQ(b.has_value(), false);
  ASSERT_NE(a.GetMutIfUnique(), nullptr) << "unique again";
  EXPECT_EQ(*a, 2);
}

TEST(Rc, GetMutRefusedWhileWeakExists) {
  auto a = Rc<int>::Make(1);
  RcWeak<int> w(a);
  EXPECT_EQ(a.GetMutIfUnique(), nullptr);
}

TEST(RcWeak, UpgradeWhileAlive) {
  auto a = Rc<int>::Make(5);
  RcWeak<int> w(a);
  Rc<int> up = w.Upgrade();
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(*up, 5);
  EXPECT_EQ(a.StrongCount(), 2u);
}

TEST(RcWeak, UpgradeAfterDeathFails) {
  RcWeak<std::string> w;
  {
    auto a = Rc<std::string>::Make("gone");
    w = RcWeak<std::string>(a);
    EXPECT_FALSE(w.Expired());
  }
  EXPECT_TRUE(w.Expired());
  EXPECT_FALSE(w.Upgrade().has_value());
}

TEST(RcWeak, PayloadDestroyedWhenStrongGoneDespiteWeak) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  RcWeak<Counted> w;
  {
    auto a = Rc<Counted>::Make();
    w = RcWeak<Counted>(a);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0) << "weak ref must not keep the payload alive";
  EXPECT_FALSE(w.Upgrade().has_value());
}

TEST(RcWeak, CopyAndMoveSemantics) {
  auto a = Rc<int>::Make(3);
  RcWeak<int> w1(a);
  RcWeak<int> w2 = w1;
  RcWeak<int> w3 = std::move(w1);
  EXPECT_EQ(*w2.Upgrade(), 3);
  EXPECT_EQ(*w3.Upgrade(), 3);
  EXPECT_EQ(a.WeakCount(), 2u);
}

// The §5 checkpoint hook: first visit per epoch wins, repeats lose, and a new
// epoch needs no flag-clearing pass.
TEST(Rc, MarkVisitedOncePerEpoch) {
  auto a = Rc<int>::Make(1);
  Rc<int> alias = a;
  EXPECT_TRUE(a.MarkVisited(1));
  EXPECT_FALSE(alias.MarkVisited(1)) << "alias sees the same mark";
  EXPECT_FALSE(a.MarkVisited(1));
  EXPECT_TRUE(a.MarkVisited(2)) << "new epoch, no clearing needed";
  EXPECT_EQ(a.mark(), 2u);
}

TEST(Rc, EmptyHandleQueriesAreSafe) {
  Rc<int> empty;
  EXPECT_EQ(empty.StrongCount(), 0u);
  EXPECT_EQ(empty.WeakCount(), 0u);
  EXPECT_FALSE(empty.has_value());
  EXPECT_THROW((void)empty.mark(), util::PanicError);
}

}  // namespace
}  // namespace lin
