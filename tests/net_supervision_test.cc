// Supervisor hardening under injected fault storms: recovery-fn panics are
// contained, crash-looping stages are quarantined, each DegradePolicy does
// what it says, MTTR is measured, the watchdog flags stuck workers, and
// out-of-domain panics (mempool) do not kill worker threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/operators/null_filter.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/util/fault_injector.h"

namespace net {
namespace {

using util::FaultInjector;

// The injector registry is process-global; keep every test hermetic.
class SupervisionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// Tight supervisor knobs so crash loops resolve in milliseconds, not the
// production defaults.
SupervisionConfig FastSupervision(std::size_t max_attempts) {
  SupervisionConfig sup;
  sup.max_recovery_attempts = max_attempts;
  sup.backoff_initial_us = 50;
  sup.backoff_factor = 2.0;
  sup.backoff_max_us = 200;
  sup.watchdog_period_ms = 2;
  return sup;
}

std::vector<StageSpec> AlwaysFaultingStage(DegradePolicy degrade) {
  std::vector<StageSpec> spec;
  // fault_every_n == 1: the operator panics on every batch, so without
  // quarantine the stage crash-loops forever.
  spec.push_back({"crashy",
                  [](std::size_t) { return std::make_unique<NullFilter>(1); },
                  degrade});
  return spec;
}

// Dispatches batches until the predicate holds or ~2s elapse; returns
// whether the predicate held. Keeps the worker busy so post-recovery and
// post-quarantine behaviour is actually exercised.
template <typename Pred>
bool DispatchUntil(Runtime& rt, FlowFeeder& feeder, Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    rt.Dispatch(feeder.Next(8));
    if (pred(rt.Stats())) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred(rt.Stats());
}

// The ISSUE's headline regression: a stage whose operator always panics AND
// whose recovery function always panics. Previously the recovery panic
// escaped the supervisor thread -> std::terminate. Now: each recovery panic
// is contained and counted, the stage burns its retry budget, gets
// quarantined, and (kPassthrough) traffic keeps flowing past the corpse.
TEST_F(SupervisionTest, RecoveryPanicLoopIsContainedAndQuarantined) {
  FaultInjector::Global().Seed(7);
  FaultInjector::Global().ArmProbability("sfi.recover", 1.0);

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/3);
  Runtime rt(cfg, AlwaysFaultingStage(DegradePolicy::kPassthrough));
  rt.Start();

  FlowSampler sampler(32, 0.0, 13);
  FlowFeeder feeder(&sampler);
  const bool quarantined = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return !s.stages.empty() && s.stages[0].quarantined_replicas == 1;
  });
  ASSERT_TRUE(quarantined) << "crash-looping stage was never quarantined";

  // Passthrough: with the stage quarantined, batches bypass it and come out
  // as processed packets again.
  const bool flowing = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return s.totals.packets > 0;
  });
  rt.Shutdown();
  EXPECT_TRUE(flowing) << "kPassthrough must let traffic bypass the stage";

  const RuntimeStats stats = rt.Stats();
  ASSERT_EQ(stats.stages.size(), 1u);
  const StageTelemetry& stage = stats.stages[0];
  EXPECT_EQ(stage.policy, DegradePolicy::kPassthrough);
  EXPECT_EQ(stage.quarantined_replicas, 1u);
  // The retry budget was spent on recoveries whose fn panicked.
  EXPECT_GE(stage.recovery_panics, cfg.supervision.max_recovery_attempts);
  EXPECT_EQ(stage.recoveries, 0u) << "every recovery attempt was sabotaged";
  EXPECT_GT(stage.passthrough_batches, 0u);
  EXPECT_GE(stats.totals.recovery_panics,
            cfg.supervision.max_recovery_attempts);
  EXPECT_EQ(stats.totals.quarantined, 1u);
  // Reaching this line at all is the real assertion: no std::terminate.
}

TEST_F(SupervisionTest, QuarantineDropPolicyCountsAndConserves) {
  FaultInjector::Global().ArmProbability("sfi.recover", 1.0);

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/2);
  Runtime rt(cfg, AlwaysFaultingStage(DegradePolicy::kDrop));
  rt.Start();

  FlowSampler sampler(32, 0.0, 17);
  FlowFeeder feeder(&sampler);
  std::uint64_t dispatched = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool saw_quarantine_drops = false;
  while (std::chrono::steady_clock::now() < deadline) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
    const RuntimeStats s = rt.Stats();
    if (!s.stages.empty() && s.stages[0].quarantine_drop_pkts > 0) {
      saw_quarantine_drops = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.Shutdown();
  ASSERT_TRUE(saw_quarantine_drops)
      << "kDrop quarantine never attributed a dropped batch";

  const RuntimeStats stats = rt.Stats();
  ASSERT_EQ(stats.stages.size(), 1u);
  EXPECT_EQ(stats.stages[0].quarantined_replicas, 1u);
  // No packet ever survives this pipeline (faults before quarantine, drops
  // after), and none may vanish unaccounted.
  EXPECT_EQ(stats.totals.packets, 0u);
  EXPECT_EQ(stats.totals.drops, dispatched)
      << "every dispatched packet must be accounted as a drop";
}

TEST_F(SupervisionTest, QuarantineFailFastSurfacesDistinctError) {
  FaultInjector::Global().ArmProbability("sfi.recover", 1.0);

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/2);
  Runtime rt(cfg, AlwaysFaultingStage(DegradePolicy::kFailFast));
  rt.Start();

  FlowSampler sampler(32, 0.0, 19);
  FlowFeeder feeder(&sampler);
  const bool failed_fast = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return !s.stages.empty() && s.stages[0].failfast_batches > 0;
  });
  rt.Shutdown();
  ASSERT_TRUE(failed_fast) << "kFailFast never rejected a batch";

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.stages[0].quarantined_replicas, 1u);
  // Fail-fast rejections are not stage faults: the stage was never entered.
  EXPECT_GT(stats.stages[0].failfast_batches, 0u);
}

// Transient faults (operator panics every 5th batch, recovery fn healthy):
// the supervisor recovers, the stage is never quarantined, and each
// fault->first-good-batch incident leaves an MTTR sample.
TEST_F(SupervisionTest, TransientFaultsRecordMttrWithoutQuarantine) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/4);
  std::vector<StageSpec> spec;
  spec.push_back({"flaky",
                  [](std::size_t) { return std::make_unique<NullFilter>(5); },
                  DegradePolicy::kDrop});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(64, 0.0, 23);
  FlowFeeder feeder(&sampler);
  const bool measured = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return !s.stages.empty() && s.stages[0].mttr_cycles.size() >= 3;
  });
  rt.Shutdown();
  ASSERT_TRUE(measured) << "no MTTR samples after repeated transient faults";

  const RuntimeStats stats = rt.Stats();
  const StageTelemetry& stage = stats.stages[0];
  EXPECT_GE(stage.faults, 3u);
  EXPECT_GE(stage.recoveries, 1u);
  EXPECT_EQ(stage.quarantined_replicas, 0u)
      << "a stage that recovers must not be quarantined";
  EXPECT_GT(stage.mttr_cycles.Mean(), 0.0);
  EXPECT_GT(stats.totals.packets, 0u);
}

// An operator that goes comatose on its first batch. The supervisor's
// watchdog (busy worker, unmoving heartbeat across a period) must flag it.
class SleepyOperator : public Operator {
 public:
  PacketBatch Process(PacketBatch batch) override {
    if (!slept_) {
      slept_ = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    return batch;
  }
  std::string_view name() const override { return "sleepy"; }

 private:
  bool slept_ = false;
};

TEST_F(SupervisionTest, WatchdogFlagsStuckWorker) {
  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/4);  // 2ms watchdog
  std::vector<StageSpec> spec;
  spec.push_back({"sleepy", [](std::size_t) {
                    return std::make_unique<SleepyOperator>();
                  }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(16, 0.0, 29);
  FlowFeeder feeder(&sampler);
  rt.Dispatch(feeder.Next(8));  // the batch the worker naps on
  const bool stalled = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return s.totals.stalls >= 1;
  });
  rt.Shutdown();
  EXPECT_TRUE(stalled) << "watchdog never flagged the sleeping worker";
  EXPECT_GT(rt.Stats().totals.packets, 0u)
      << "worker must finish the batch after its nap";
}

// Faults injected *outside* any domain — in the worker's own materialization
// path (Mempool::Alloc) — must be contained by the worker itself: the
// sub-batch is dropped and accounted, the thread survives, and processing
// resumes once the plan is disarmed.
TEST_F(SupervisionTest, MempoolInjectionIsContainedByWorker) {
  FaultInjector::Global().ArmEveryNth("mempool.alloc", 40);

  RuntimeConfig cfg;
  cfg.workers = 1;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(32, 0.0, 31);
  FlowFeeder feeder(&sampler);
  constexpr std::uint64_t kStormPackets = 50 * 8;
  for (int i = 0; i < 50; ++i) {
    rt.Dispatch(feeder.Next(8));
  }
  // Quiesce the storm phase, then disarm and prove the worker still works.
  const bool drained = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return s.totals.drops > 0;
  });
  ASSERT_TRUE(drained) << "injected alloc panic never dropped a sub-batch";

  FaultInjector::Global().Reset();
  const RuntimeStats mid = rt.Stats();
  const bool resumed = DispatchUntil(rt, feeder, [&mid](const RuntimeStats& s) {
    return s.totals.packets > mid.totals.packets;
  });
  rt.Shutdown();
  EXPECT_TRUE(resumed) << "worker thread died on an out-of-domain panic";

  const RuntimeStats stats = rt.Stats();
  EXPECT_GT(stats.totals.drops, 0u);
  EXPECT_GE(stats.totals.packets + stats.totals.drops, kStormPackets)
      << "packets vanished unaccounted during the alloc-fault storm";
}

// Operator-site injection driven through the public injector API end to end:
// probability plan on the null-filter site, seeded, across a multi-worker
// runtime. The runtime must absorb every injected panic as an ordinary
// fault + recovery and conserve packets.
TEST_F(SupervisionTest, SeededOperatorStormIsAbsorbedAcrossWorkers) {
  FaultInjector::Global().Seed(1234);
  FaultInjector::Global().ArmProbability("op.null_filter", 0.02,
                                         util::PanicKind::kBoundsCheck);

  RuntimeConfig cfg;
  cfg.workers = 4;
  cfg.supervision = FastSupervision(/*max_attempts=*/8);
  std::vector<StageSpec> spec;
  spec.push_back(
      {"null", [](std::size_t) { return std::make_unique<NullFilter>(); }});
  Runtime rt(cfg, spec);
  rt.Start();

  constexpr int kBatches = 400;
  constexpr std::uint64_t kBatchSize = 16;
  FlowSampler sampler(128, 0.0, 37);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_GT(stats.totals.faults, 0u) << "storm fired nothing at 2% over 6400";
  EXPECT_GE(stats.totals.recoveries, 1u);
  EXPECT_EQ(stats.totals.quarantined, 0u)
      << "transient injected faults must not quarantine a healthy stage";
  EXPECT_GT(stats.totals.packets, 0u);
  EXPECT_EQ(stats.totals.packets + stats.totals.drops, kBatches * kBatchSize);
  EXPECT_GT(FaultInjector::Global().StatsFor("op.null_filter").fires, 0u);
}

// Quarantine probation, success path: the stage crash-loops into quarantine
// while the injected faults are armed; once the cool-down elapses the
// supervisor grants a probe batch through a fresh domain, the (now healthy)
// stage passes it, and the replica is back in service.
TEST_F(SupervisionTest, ProbationUnquarantinesARecoveredStage) {
  FaultInjector::Global().Seed(101);
  FaultInjector::Global().ArmProbability("op.null_filter", 1.0);
  FaultInjector::Global().ArmProbability("sfi.recover", 1.0);

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/2);
  cfg.supervision.probation_cooldown_batches = 3;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"probed", [](std::size_t) { return std::make_unique<NullFilter>(); },
       DegradePolicy::kPassthrough});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(32, 0.0, 67);
  FlowFeeder feeder(&sampler);
  const bool quarantined = DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
    return s.stages[0].quarantined_replicas == 1;
  });
  ASSERT_TRUE(quarantined);

  // The faults clear (the outage ends); degraded batches burn the cool-down
  // and the probe goes through the fresh domain cleanly.
  FaultInjector::Global().Reset();
  const bool unquarantined =
      DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
        return s.unquarantines >= 1;
      });
  ASSERT_TRUE(unquarantined) << "probe never brought the stage back";

  // Back in service: packets flow through the stage again (not passthrough).
  const RuntimeStats mid = rt.Stats();
  const bool serving = DispatchUntil(rt, feeder, [&mid](const RuntimeStats& s) {
    return s.totals.packets > mid.totals.packets &&
           s.stages[0].quarantined_replicas == 0;
  });
  rt.Shutdown();
  EXPECT_TRUE(serving);

  const RuntimeStats stats = rt.Stats();
  EXPECT_GE(stats.stages[0].probes, 1u);
  EXPECT_GE(stats.stages[0].unquarantines, 1u);
  EXPECT_EQ(stats.stages[0].quarantined_replicas, 0u);
  EXPECT_GE(stats.unquarantines, 1u);
}

// Probation, failure path: the outage persists, so the probe batch faults in
// the fresh domain — the stage re-quarantines and the cool-down doubles
// (bounded retries, no probe storm against a still-dead dependency).
TEST_F(SupervisionTest, FailedProbeRequarantinesWithBackoff) {
  FaultInjector::Global().Seed(103);
  FaultInjector::Global().ArmProbability("op.null_filter", 1.0);
  FaultInjector::Global().ArmProbability("sfi.recover", 1.0);

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.supervision = FastSupervision(/*max_attempts=*/2);
  cfg.supervision.probation_cooldown_batches = 2;
  std::vector<StageSpec> spec;
  spec.push_back(
      {"probed", [](std::size_t) { return std::make_unique<NullFilter>(); },
       DegradePolicy::kPassthrough});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(32, 0.0, 71);
  FlowFeeder feeder(&sampler);
  const bool requarantined =
      DispatchUntil(rt, feeder, [](const RuntimeStats& s) {
        return s.requarantines >= 2;
      });
  rt.Shutdown();
  ASSERT_TRUE(requarantined) << "failed probes never re-quarantined";

  const RuntimeStats stats = rt.Stats();
  EXPECT_GE(stats.stages[0].probes, 2u);
  EXPECT_GE(stats.stages[0].requarantines, 2u);
  EXPECT_EQ(stats.stages[0].unquarantines, 0u);
  EXPECT_EQ(stats.stages[0].quarantined_replicas, 1u)
      << "stage must end back in quarantine while the outage persists";
  // Doubling cool-down: with cooldown 2 -> 4 -> 8, the second re-quarantine
  // needs strictly more degraded batches than the first. The probe count
  // being small relative to total batches is the observable effect.
  EXPECT_LT(stats.stages[0].probes * 2, stats.totals.batches +
                                            stats.stages[0].passthrough_batches)
      << "probe storm: cool-down doubling is not damping probes";
}

}  // namespace
}  // namespace net
