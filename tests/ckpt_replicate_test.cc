// Primary/backup replication built on snapshots (§5 automation): replicas
// converge at mutation boundaries, failed mutations never propagate, and
// failover promotes consistent state — including alias structure.
#include "src/ckpt/replicate.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ckpt/trie.h"
#include "src/util/panic.h"

namespace ckpt {
namespace {

struct Ledger {
  std::int64_t total = 0;
  std::vector<std::string> entries;
  LINSYS_CHECKPOINT_FIELDS(total, entries)
  bool operator==(const Ledger&) const = default;
};

TEST(Replicate, ReplicasStartIdentical) {
  ReplicatedState<Ledger> rs(Ledger{10, {"seed"}}, /*backup_count=*/3);
  EXPECT_EQ(rs.replica_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rs.replica(i), rs.primary());
  }
}

TEST(Replicate, ApplyPropagatesToAllReplicas) {
  ReplicatedState<Ledger> rs(Ledger{}, 2);
  rs.Apply([](Ledger& l) {
    l.total += 5;
    l.entries.push_back("deposit 5");
  });
  rs.Apply([](Ledger& l) { l.total -= 2; });
  EXPECT_EQ(rs.version(), 2u);
  EXPECT_EQ(rs.primary().total, 3);
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i), rs.primary()) << "replica " << i;
  }
}

TEST(Replicate, FailedMutationPropagatesNothing) {
  ReplicatedState<Ledger> rs(Ledger{100, {}}, 2);
  rs.Apply([](Ledger& l) { l.total = 50; });
  EXPECT_THROW(rs.Apply([](Ledger& l) {
    l.total = -1;
    l.entries.push_back("half-done");
    util::Panic("validation failed mid-mutation");
  }),
               util::PanicError);
  EXPECT_EQ(rs.version(), 1u);
  EXPECT_EQ(rs.primary().total, 50) << "primary rolled back";
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).total, 50) << "replica saw nothing";
    EXPECT_TRUE(rs.replica(i).entries.empty());
  }
}

TEST(Replicate, FailoverPromotesConsistentState) {
  ReplicatedState<Ledger> rs(Ledger{}, 2);
  rs.Apply([](Ledger& l) { l.total = 7; });
  rs.Failover(1);
  EXPECT_EQ(rs.primary().total, 7);
  // Work continues on the new primary and still replicates.
  rs.Apply([](Ledger& l) { l.total += 1; });
  EXPECT_EQ(rs.primary().total, 8);
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).total, 8);
  }
}

TEST(Replicate, OutOfRangeReplicaPanics) {
  ReplicatedState<Ledger> rs(Ledger{}, 1);
  EXPECT_THROW((void)rs.replica(5), util::PanicError);
  EXPECT_THROW(rs.Failover(5), util::PanicError);
}

TEST(Replicate, AliasStructureReplicates) {
  RuleTrie trie;
  FwRule r;
  r.id = 1;
  RulePtr shared = RulePtr::Make(r);
  trie.Insert(0x0a000000, 16, shared);
  trie.Insert(0x0b000000, 16, shared);

  ReplicatedState<RuleTrie> rs(std::move(trie), 2);
  rs.Apply([](RuleTrie& t) {
    FwRule extra;
    extra.id = 2;
    t.Insert(0x0c000000, 16, RulePtr::Make(extra));
  });
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).RuleSlotCount(), 3u);
    EXPECT_EQ(rs.replica(i).DistinctRuleCount(), 2u)
        << "replica " << i << " must preserve the shared rule";
    EXPECT_TRUE(RuleTrie::Equivalent(rs.primary(), rs.replica(i)));
  }
}

}  // namespace
}  // namespace ckpt
