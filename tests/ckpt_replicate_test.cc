// Primary/backup replication built on snapshots (§5 automation): replicas
// converge at mutation boundaries, failed mutations never propagate, and
// failover promotes consistent state — including alias structure.
#include "src/ckpt/replicate.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ckpt/trie.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace ckpt {
namespace {

struct Ledger {
  std::int64_t total = 0;
  std::vector<std::string> entries;
  LINSYS_CHECKPOINT_FIELDS(total, entries)
  bool operator==(const Ledger&) const = default;
};

TEST(Replicate, ReplicasStartIdentical) {
  ReplicatedState<Ledger> rs(Ledger{10, {"seed"}}, /*backup_count=*/3);
  EXPECT_EQ(rs.replica_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rs.replica(i), rs.primary());
  }
}

TEST(Replicate, ApplyPropagatesToAllReplicas) {
  ReplicatedState<Ledger> rs(Ledger{}, 2);
  rs.Apply([](Ledger& l) {
    l.total += 5;
    l.entries.push_back("deposit 5");
  });
  rs.Apply([](Ledger& l) { l.total -= 2; });
  EXPECT_EQ(rs.version(), 2u);
  EXPECT_EQ(rs.primary().total, 3);
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i), rs.primary()) << "replica " << i;
  }
}

TEST(Replicate, FailedMutationPropagatesNothing) {
  ReplicatedState<Ledger> rs(Ledger{100, {}}, 2);
  rs.Apply([](Ledger& l) { l.total = 50; });
  EXPECT_THROW(rs.Apply([](Ledger& l) {
    l.total = -1;
    l.entries.push_back("half-done");
    util::Panic("validation failed mid-mutation");
  }),
               util::PanicError);
  EXPECT_EQ(rs.version(), 1u);
  EXPECT_EQ(rs.primary().total, 50) << "primary rolled back";
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).total, 50) << "replica saw nothing";
    EXPECT_TRUE(rs.replica(i).entries.empty());
  }
}

TEST(Replicate, FailoverPromotesConsistentState) {
  ReplicatedState<Ledger> rs(Ledger{}, 2);
  rs.Apply([](Ledger& l) { l.total = 7; });
  rs.Failover(1);
  EXPECT_EQ(rs.primary().total, 7);
  // Work continues on the new primary and still replicates.
  rs.Apply([](Ledger& l) { l.total += 1; });
  EXPECT_EQ(rs.primary().total, 8);
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).total, 8);
  }
}

TEST(Replicate, OutOfRangeReplicaPanics) {
  ReplicatedState<Ledger> rs(Ledger{}, 1);
  EXPECT_THROW((void)rs.replica(5), util::PanicError);
  EXPECT_THROW(rs.Failover(5), util::PanicError);
}

// The "ckpt.replica_restore" storm hook: a replica restore dying
// mid-propagation leaves the committed primary intact and every replica at
// a mutation boundary — replicas before the fault hold the new version,
// later ones the previous version; none are torn.
TEST(Replicate, InjectedReplicaRestoreFaultLeavesBoundaryStates) {
  auto& inj = util::FaultInjector::Global();
  inj.Reset();

  ReplicatedState<Ledger> rs(Ledger{1, {}}, /*backup_count=*/3);
  rs.Apply([](Ledger& l) { l.total = 2; });  // all replicas at version 2

  // Fire on the *second* replica of the next Apply: replica 0 restores the
  // new state, the loop dies before touching replicas 1 and 2.
  inj.ArmEveryNth("ckpt.replica_restore", 2);
  EXPECT_THROW(rs.Apply([](Ledger& l) { l.total = 3; }), util::PanicError);
  inj.Reset();

  EXPECT_EQ(rs.primary().total, 3) << "the primary committed before the fan-out";
  EXPECT_EQ(rs.replica(0).total, 3) << "restored before the fault";
  EXPECT_EQ(rs.replica(1).total, 2) << "previous mutation boundary";
  EXPECT_EQ(rs.replica(2).total, 2) << "previous mutation boundary";

  // The system recovers: the next successful Apply reconverges everyone.
  rs.Apply([](Ledger& l) { l.total = 4; });
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).total, 4);
  }
}

// The "ckpt.failover_resync" storm hook: promotion is unconditional, so a
// resync fault after the swap leaves a valid new primary and stale (but
// boundary-consistent) replicas.
TEST(Replicate, InjectedFailoverResyncFaultKeepsPromotion) {
  auto& inj = util::FaultInjector::Global();
  inj.Reset();

  ReplicatedState<Ledger> rs(Ledger{5, {}}, /*backup_count=*/2);
  rs.Apply([](Ledger& l) { l.total = 6; });
  // Diverge the primary from the replicas *without* propagation by failing
  // the fan-out on its first replica.
  inj.ArmOneShot("ckpt.replica_restore");
  EXPECT_THROW(rs.Apply([](Ledger& l) { l.total = 9; }), util::PanicError);

  inj.ArmOneShot("ckpt.failover_resync");
  EXPECT_THROW(rs.Failover(0), util::PanicError);
  inj.Reset();

  EXPECT_EQ(rs.primary().total, 6) << "replica 0 was promoted";
  EXPECT_EQ(rs.replica(0).total, 9) << "old primary demoted, not resynced";
  EXPECT_EQ(rs.replica(1).total, 6) << "untouched replica";

  // A clean failover afterwards converges everyone on the promoted state.
  rs.Failover(1);
  EXPECT_EQ(rs.primary().total, 6);
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).total, 6);
  }
}

TEST(Replicate, AliasStructureReplicates) {
  RuleTrie trie;
  FwRule r;
  r.id = 1;
  RulePtr shared = RulePtr::Make(r);
  trie.Insert(0x0a000000, 16, shared);
  trie.Insert(0x0b000000, 16, shared);

  ReplicatedState<RuleTrie> rs(std::move(trie), 2);
  rs.Apply([](RuleTrie& t) {
    FwRule extra;
    extra.id = 2;
    t.Insert(0x0c000000, 16, RulePtr::Make(extra));
  });
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    EXPECT_EQ(rs.replica(i).RuleSlotCount(), 3u);
    EXPECT_EQ(rs.replica(i).DistinctRuleCount(), 2u)
        << "replica " << i << " must preserve the shared rule";
    EXPECT_TRUE(RuleTrie::Equivalent(rs.primary(), rs.replica(i)));
  }
}

}  // namespace
}  // namespace ckpt
