// Property tests for the Maglev consistent-hashing table: full coverage,
// near-perfect balance, lookup determinism, and minimal disruption across
// membership changes — the invariants the NSDI '16 paper proves.
#include "src/net/maglev.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/util/panic.h"
#include "src/util/rng.h"

namespace net {
namespace {

std::vector<std::string> MakeBackends(int n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) {
    names.push_back("backend-" + std::to_string(i));
  }
  return names;
}

TEST(Maglev, EveryTableSlotAssigned) {
  Maglev m(MakeBackends(5), 1009);
  for (std::uint32_t b : m.table()) {
    EXPECT_LT(b, 5u);
  }
}

TEST(Maglev, SingleBackendOwnsEverything) {
  Maglev m(MakeBackends(1), 101);
  for (std::uint32_t b : m.table()) {
    EXPECT_EQ(b, 0u);
  }
}

TEST(Maglev, LookupIsDeterministic) {
  Maglev a(MakeBackends(7), 1009);
  Maglev b(MakeBackends(7), 1009);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = rng.Next();
    EXPECT_EQ(a.Lookup(h), b.Lookup(h));
  }
}

TEST(Maglev, RejectsBadConfigs) {
  EXPECT_THROW(Maglev(MakeBackends(3), 1000), util::PanicError)
      << "non-prime table";
  EXPECT_THROW(Maglev({}, 1009), util::PanicError) << "no backends";
  EXPECT_THROW(Maglev(MakeBackends(50), 1009), util::PanicError)
      << "table below 100x backends";
}

// The Maglev paper's headline property: slot counts differ by <1% of the
// mean with M >= 100*N.
class MaglevBalance : public ::testing::TestWithParam<int> {};

TEST_P(MaglevBalance, SlotsNearlyEven) {
  const int n = GetParam();
  Maglev m(MakeBackends(n), 65537);
  const auto histogram = m.SlotHistogram();
  const double mean = 65537.0 / n;
  const auto [lo, hi] =
      std::minmax_element(histogram.begin(), histogram.end());
  EXPECT_GT(*lo, mean * 0.90) << "worst under-loaded backend";
  EXPECT_LT(*hi, mean * 1.10) << "worst over-loaded backend";
}

INSTANTIATE_TEST_SUITE_P(BackendCounts, MaglevBalance,
                         ::testing::Values(2, 3, 5, 10, 50, 100));

// Removing one backend: flows on surviving backends should mostly stay put.
TEST(Maglev, MinimalDisruptionOnRemoval) {
  Maglev m(MakeBackends(10), 65537);
  const std::vector<std::uint32_t> before = m.table();
  ASSERT_TRUE(m.RemoveBackend("backend-3"));
  const std::vector<std::uint32_t>& after = m.table();

  std::size_t moved_surviving = 0;
  std::size_t was_on_removed = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == 3) {
      ++was_on_removed;
      continue;
    }
    // Backend indices above the removed one shift down by one.
    const std::uint32_t expected =
        before[i] > 3 ? before[i] - 1 : before[i];
    if (after[i] != expected) {
      ++moved_surviving;
    }
  }
  // ~1/10th of slots belonged to the removed backend and must move; the
  // rest should be nearly untouched (the paper reports a few percent).
  EXPECT_NEAR(static_cast<double>(was_on_removed), 6553.7, 655.0);
  EXPECT_LT(moved_surviving, before.size() / 10)
      << "surviving flows should rarely be reshuffled";
}

TEST(Maglev, AddBackendTakesFairShare) {
  Maglev m(MakeBackends(9), 65537);
  m.AddBackend("backend-new");
  const auto histogram = m.SlotHistogram();
  ASSERT_EQ(histogram.size(), 10u);
  EXPECT_NEAR(static_cast<double>(histogram[9]), 6553.7, 655.0)
      << "new backend should receive ~1/N of the table";
}

TEST(Maglev, RemoveUnknownBackendIsNoop) {
  Maglev m(MakeBackends(3), 1009);
  const auto before = m.table();
  EXPECT_FALSE(m.RemoveBackend("nope"));
  EXPECT_EQ(m.table(), before);
}

TEST(Maglev, RemoveLastBackendPanics) {
  Maglev m(MakeBackends(1), 101);
  EXPECT_THROW((void)m.RemoveBackend("backend-0"), util::PanicError);
}

TEST(Maglev, FlowStickiness) {
  // The same flow hash always lands on the same backend between lookups —
  // connection affinity, the property load balancers exist for.
  Maglev m(MakeBackends(4), 1009);
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t h = rng.Next();
    const std::size_t first = m.Lookup(h);
    for (int j = 0; j < 10; ++j) {
      EXPECT_EQ(m.Lookup(h), first);
    }
  }
}

}  // namespace
}  // namespace net
