// Cross-module edge cases that none of the per-module suites cover:
// revocation racing pipelines, policy on isolated stages, IFC summary-mode
// assertions, deep RIL programs, checkpoint of empty/degenerate shapes.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/trie.h"
#include "src/ifc/an/intervals.h"
#include "src/ifc/checker.h"
#include "src/net/operators/null_filter.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/sfi/policy.h"
#include "src/util/panic.h"

namespace {

net::PacketBatch MakeBatch(net::Mempool& pool, std::size_t n) {
  net::PktSourceConfig cfg;
  cfg.flow_count = 8;
  cfg.seed = 1;
  net::PktSource src(&pool, cfg);
  net::PacketBatch batch(n);
  src.RxBurst(batch, n);
  return batch;
}

TEST(EdgeSfi, RevokedStageFailsPipelineWithRevokedError) {
  net::Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  net::IsolatedPipeline pipe(&mgr);
  pipe.AddStage("a", [] { return std::make_unique<net::NullFilter>(); });
  pipe.AddStage("b", [] { return std::make_unique<net::NullFilter>(); });
  ASSERT_TRUE(pipe.Run(MakeBatch(pool, 4)).ok());

  // The owner of stage b revokes everything it exported.
  pipe.domain(1).ref_table().Clear();
  auto result = pipe.Run(MakeBatch(pool, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), sfi::CallError::kRevoked);
  EXPECT_EQ(pool.in_use(), 0u) << "batch reclaimed on the error path";
  EXPECT_EQ(pipe.domain(1).state(), sfi::DomainState::kRunning)
      << "revocation is not a fault";

  // Recovery (which re-exports) brings the stage back.
  pipe.domain(1).Recover();
  EXPECT_TRUE(pipe.Run(MakeBatch(pool, 4)).ok());
}

TEST(EdgeSfi, PolicyDeniedStage) {
  net::Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  net::IsolatedPipeline pipe(&mgr);
  pipe.AddStage("locked", [] { return std::make_unique<net::NullFilter>(); });
  pipe.domain(0).SetPolicy(sfi::AllowMethods({"status"}));
  auto result = pipe.Run(MakeBatch(pool, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), sfi::CallError::kAccessDenied)
      << "pipeline calls use method name 'process'";
}

TEST(EdgeIfc, AssertObligationsInSummaryMode) {
  // assert_label inside a callee, checked per call site under summaries.
  constexpr std::string_view src = R"(
    fn audited(x: int) -> int {
      assert_label(x, {low});
      return x;
    }
    fn main() {
      #[label(low)]
      let fine = 1;
      let a = audited(fine);
      #[label(high)]
      let spicy = 2;
      let b = audited(spicy);
    }
  )";
  ifc::AnalysisResult sums = ifc::AnalyzeSource(src, ifc::Mode::kSummaries);
  EXPECT_FALSE(sums.ifc_ok);
  std::size_t violations = 0;
  for (const auto& d : sums.diags.all()) {
    violations += d.phase == ril::Phase::kIfc;
  }
  EXPECT_EQ(violations, 1u) << sums.diags.ToString();
  ifc::AnalysisResult whole =
      ifc::AnalyzeSource(src, ifc::Mode::kWholeProgram);
  EXPECT_FALSE(whole.ifc_ok);
}

TEST(EdgeIfc, EmitUnderSecretLoopInSummaries) {
  constexpr std::string_view src = R"(
    fn tick() { emit(stdout, 1); }
    fn main() {
      #[label(s)]
      let secret = 3;
      let mut i = 0;
      while i < secret {
        tick();
        i = i + 1;
      }
    }
  )";
  EXPECT_FALSE(ifc::AnalyzeSource(src, ifc::Mode::kWholeProgram).ifc_ok)
      << "loop trip count depends on the secret";
  EXPECT_FALSE(ifc::AnalyzeSource(src, ifc::Mode::kSummaries).ifc_ok);
}

TEST(EdgeIfc, DeeplyNestedControlFlowTerminates) {
  // 12 nested whiles with interleaved label joins: fixpoints must nest.
  std::string src = "fn main() {\n#[label(t)] let s = 1;\nlet mut x = 0;\n";
  for (int i = 0; i < 12; ++i) {
    src += "let mut i" + std::to_string(i) + " = 0;\n";
    src += "while i" + std::to_string(i) + " < 2 {\n";
  }
  src += "x = s;\n";
  for (int i = 11; i >= 0; --i) {
    src += "i" + std::to_string(i) + " = i" + std::to_string(i) + " + 1;\n}\n";
  }
  src += "emit(stdout, x);\n}\n";
  ifc::AnalysisResult result = ifc::AnalyzeSource(src);
  EXPECT_TRUE(result.type_ok) << result.diags.ToString();
  EXPECT_FALSE(result.ifc_ok) << "x carries the secret out of the loops";
}

TEST(EdgeCkpt, EmptyTrieRoundTrips) {
  ckpt::RuleTrie empty;
  ckpt::RuleTrie restored = ckpt::Restore<ckpt::RuleTrie>(
      ckpt::Checkpoint(empty));
  EXPECT_EQ(restored.RuleSlotCount(), 0u);
  EXPECT_TRUE(ckpt::RuleTrie::Equivalent(empty, restored));
}

TEST(EdgeCkpt, MaximumDepthPrefixes) {
  ckpt::RuleTrie trie;
  ckpt::FwRule r;
  r.id = 1;
  // /32 prefixes: 33-node chains.
  trie.Insert(0xffffffff, 32, ckpt::RulePtr::Make(r));
  trie.Insert(0x00000000, 32, ckpt::RulePtr::Make(r));
  EXPECT_EQ(trie.Lookup(0xffffffff)->id, 1u);
  EXPECT_EQ(trie.Lookup(0xfffffffe), nullptr);
  ckpt::RuleTrie restored =
      ckpt::Restore<ckpt::RuleTrie>(ckpt::Checkpoint(trie));
  EXPECT_EQ(restored.Lookup(0x00000000)->id, 1u);
}

TEST(EdgeRange, EmptyMainAndUnreachableCode) {
  ifc::AnalysisResult r = ifc::AnalyzeSource(R"(
    fn main() {
      let x = 1;
      if x == 1 {
        return;
      }
      // Unreachable given x == 1, but the analyzer must not crash on it
      // (it refines the else path to bottom and checks vacuously).
      let boom = check_range(x, 5, 5);
    }
  )");
  ASSERT_TRUE(r.type_ok) << r.diags.ToString();
  ril::Diagnostics diags;
  EXPECT_TRUE(ifc::VerifyRanges(r.program, &diags)) << diags.ToString();
}

}  // namespace
