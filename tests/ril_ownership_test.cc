// The static ownership checker — each test is a program rustc would accept
// (must pass) or reject (must fail with the matching diagnostic), including
// the paper's §2 and §4 listings.
#include "src/ifc/ril/ownership.h"

#include <gtest/gtest.h>

#include "src/ifc/ril/parser.h"
#include "src/ifc/ril/types.h"

namespace ril {
namespace {

Diagnostics OwnershipCheck(std::string_view src) {
  Diagnostics diags;
  Program p = Parser::Parse(src, &diags);
  EXPECT_FALSE(diags.HasErrors()) << diags.ToString();
  TypeChecker types(&p, &diags);
  EXPECT_TRUE(types.Check()) << diags.ToString();
  OwnershipChecker checker(&p, &diags);
  checker.Check();
  return diags;
}

// The paper's §2 listing: take(v1) consumes; borrow(&v2) preserves.
TEST(Ownership, PaperSection2Listing) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn borrow(v: &vec) { }
    fn main() {
      let v1 = vec![1, 2, 3];
      let v2 = vec![1, 2, 3];
      take(v1);
      emit(stdout, v1);   // Error: binding v1 was consumed by take()
      borrow(&v2);
      emit(stdout, v2);   // OK: binding v2 is preserved by borrow()
    }
  )");
  ASSERT_TRUE(d.HasErrors());
  EXPECT_EQ(d.count(), 1u) << d.ToString();
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'v1'"));
  EXPECT_EQ(d.all()[0].line, 8) << "the error is on the emit of v1";
}

TEST(Ownership, CleanProgramPasses) {
  Diagnostics d = OwnershipCheck(R"(
    fn consume(v: vec) -> int { return len(&v); }
    fn main() {
      let a = vec![1];
      let n = consume(a);
      let b = vec![2];
      emit(stdout, b);
      emit(stdout, n);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, LetInitMoves) {
  Diagnostics d = OwnershipCheck(R"(
    fn main() {
      let a = vec![1];
      let b = a;
      emit(stdout, a);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'a'"));
}

TEST(Ownership, CopyTypesNeverMove) {
  Diagnostics d = OwnershipCheck(R"(
    fn take_int(x: int) { }
    fn main() {
      let x = 5;
      take_int(x);
      take_int(x);
      let y = x;
      emit(stdout, x);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, ReassignmentRevivesBinding) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let mut a = vec![1];
      take(a);
      a = vec![2];
      emit(stdout, a);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, AppendConsumesSource) {
  Diagnostics d = OwnershipCheck(R"(
    fn main() {
      let mut a = vec![1];
      let b = vec![2];
      append(&mut a, b);
      emit(stdout, b);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'b'"));
}

TEST(Ownership, MoveOutOfFieldRejected) {
  Diagnostics d = OwnershipCheck(R"(
    struct Buffer { data: vec }
    fn main() {
      let buf = Buffer { data: vec![1] };
      let stolen = buf.data;
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "cannot move out of field"));
}

TEST(Ownership, ReadingFieldIsNotAMove) {
  Diagnostics d = OwnershipCheck(R"(
    struct Buffer { data: vec }
    fn main() {
      let buf = Buffer { data: vec![1] };
      emit(stdout, buf.data);
      let n = len(&buf.data);
      let copy = clone(&buf.data);
      emit(stdout, buf.data);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, MovedInOneBranchIsMovedAfter) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let a = vec![1];
      let c = true;
      if c { take(a); } else { }
      emit(stdout, a);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'a'"));
}

TEST(Ownership, MovedInBothBranchesSingleError) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let a = vec![1];
      let c = true;
      if c { take(a); } else { take(a); }
      emit(stdout, a);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'a'"));
}

TEST(Ownership, BranchLocalMovesDoNotConflict) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let a = vec![1];
      let c = true;
      if c { take(a); } else { take(a); }
    }
  )");
  EXPECT_FALSE(d.HasErrors())
      << "each path moves once; no path uses after move: " << d.ToString();
}

TEST(Ownership, MoveInsideLoopCaughtOnSecondIteration) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let a = vec![1];
      let mut i = 0;
      while i < 3 {
        take(a);
        i = i + 1;
      }
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'a'"))
      << "iteration 2 uses the value moved in iteration 1";
}

TEST(Ownership, LoopWithReinitIsFine) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let mut a = vec![1];
      let mut i = 0;
      while i < 3 {
        take(a);
        a = vec![9];
        i = i + 1;
      }
      emit(stdout, a);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, CallConflictMoveWhileBorrowed) {
  Diagnostics d = OwnershipCheck(R"(
    struct Buffer { data: vec }
    fn weird(b: &mut Buffer, v: Buffer) { }
    fn main() {
      let mut buf = Buffer { data: vec![] };
      weird(&mut buf, buf);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "moved into call"));
}

TEST(Ownership, CallConflictTwoMutBorrows) {
  Diagnostics d = OwnershipCheck(R"(
    fn two(a: &mut vec, b: &mut vec) { }
    fn main() {
      let mut v = vec![1];
      two(&mut v, &mut v);
    }
  )");
  EXPECT_TRUE(
      d.Contains(Phase::kOwnership, "mutably borrowed more than once"));
}

TEST(Ownership, CallConflictMutAndShared) {
  Diagnostics d = OwnershipCheck(R"(
    fn mix(a: &mut vec, b: &vec) { }
    fn main() {
      let mut v = vec![1];
      mix(&mut v, &v);
    }
  )");
  EXPECT_TRUE(
      d.Contains(Phase::kOwnership, "borrowed both mutably and immutably"));
}

TEST(Ownership, DisjointArgumentsAreFine) {
  Diagnostics d = OwnershipCheck(R"(
    fn mix(a: &mut vec, b: &vec) { }
    fn main() {
      let mut v = vec![1];
      let w = vec![2];
      mix(&mut v, &w);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, TwoSharedBorrowsAreFine) {
  Diagnostics d = OwnershipCheck(R"(
    // Reference params are re-borrowed explicitly (&a), a RIL restriction.
    fn both(a: &vec, b: &vec) -> int { return len(&a) + len(&b); }
    fn main() {
      let v = vec![1];
      let n = both(&v, &v);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, BareValueStatementMoves) {
  Diagnostics d = OwnershipCheck(R"(
    fn main() {
      let a = vec![1];
      a;
      emit(stdout, a);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'a'"));
}

TEST(Ownership, ReturnMovesValue) {
  Diagnostics d = OwnershipCheck(R"(
    fn pick(a: vec) -> vec {
      return a;
    }
    fn main() {
      let v = pick(vec![1]);
      emit(stdout, v);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Ownership, UseOfMovedViaBorrowRejected) {
  Diagnostics d = OwnershipCheck(R"(
    fn take(v: vec) { }
    fn main() {
      let v = vec![1];
      take(v);
      let n = len(&v);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kOwnership, "use of moved value 'v'"));
}

}  // namespace
}  // namespace ril
