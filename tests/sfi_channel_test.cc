#include "src/sfi/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/lin/own.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace sfi {
namespace {

TEST(Channel, SendRecvRoundTrip) {
  Channel<std::string> ch;
  ch.Send(lin::Make<std::string>("hello"));
  auto got = ch.Recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->Borrow(), "hello");
}

TEST(Channel, SenderLosesAccess) {
  Channel<std::string> ch;
  auto msg = lin::Make<std::string>("secret");
  ch.Send(std::move(msg));
  // Zero-copy isolation: the sender's binding is consumed.
  EXPECT_THROW((void)*msg, util::PanicError);
}

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  for (int i = 0; i < 10; ++i) {
    ch.Send(lin::Make<int>(i));
  }
  for (int i = 0; i < 10; ++i) {
    auto got = ch.Recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*std::as_const(*got), i);
  }
}

// Tri-state receive: kEmpty ("nothing right now") and kClosed ("never
// again") are distinguishable, so a polling consumer can terminate. Before
// the fix both cases collapsed into one nullopt and a spin-polling loop on
// a closed channel never exited.
TEST(Channel, TryRecvDistinguishesEmptyFromClosed) {
  Channel<int> ch;
  EXPECT_EQ(ch.TryRecv().status, RecvStatus::kEmpty);
  ch.Send(lin::Make<int>(1));
  ch.Send(lin::Make<int>(2));
  ch.Close();
  // Closed but not drained: queued messages still come out...
  auto got = ch.TryRecv();
  ASSERT_EQ(got.status, RecvStatus::kValue);
  EXPECT_EQ(*std::as_const(*got), 1);
  ASSERT_TRUE(ch.TryRecv().has_value());
  // ...and only the drained channel reports kClosed, forever.
  EXPECT_EQ(ch.TryRecv().status, RecvStatus::kClosed);
  EXPECT_EQ(ch.TryRecv().status, RecvStatus::kClosed);
}

TEST(Channel, RecvForTimesOutEmptyThenSeesClose) {
  Channel<int> ch;
  EXPECT_EQ(ch.RecvFor(std::chrono::microseconds(100)).status,
            RecvStatus::kEmpty);
  ch.Send(lin::Make<int>(7));
  auto got = ch.RecvFor(std::chrono::microseconds(100));
  ASSERT_EQ(got.status, RecvStatus::kValue);
  EXPECT_EQ(*std::as_const(*got), 7);
  ch.Close();
  EXPECT_EQ(ch.RecvFor(std::chrono::microseconds(100)).status,
            RecvStatus::kClosed);
}

// The on_pop hook runs under the channel lock with the message about to be
// handed out — the dequeue and the callback's bookkeeping are atomic.
TEST(Channel, OnPopSeesTheMessageBeforeHandout) {
  Channel<int> ch;
  ch.Send(lin::Make<int>(9));
  int seen = 0;
  auto got = ch.TryRecv([&seen](const int& v) { seen = v; });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(seen, 9);
  EXPECT_EQ(*std::as_const(*got), 9);
}

TEST(Channel, CloseUnblocksReceivers) {
  Channel<int> ch;
  std::thread receiver([&ch] {
    auto got = ch.Recv();
    EXPECT_FALSE(got.has_value());
  });
  ch.Close();
  receiver.join();
}

// A refused send does not destroy the message: it comes back to the caller
// in SendResult::rejected, ownership intact. Before the fix the Own<T> died
// inside Send and the loss was invisible.
TEST(Channel, SendToClosedReturnsTheMessage) {
  Channel<int> ch;
  ch.Close();
  auto result = ch.Send(lin::Make<int>(41));
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.rejected.has_value());
  EXPECT_EQ(*std::as_const(*result.rejected), 41);
  EXPECT_EQ(ch.size(), 0u);
  // The returned handle is a normal Own: still usable, still linear.
  lin::Own<int> back = std::move(*result.rejected);
  EXPECT_EQ(*std::as_const(back), 41);
}

// The sharper variant of the same bug: a Send *blocked on a full bounded
// channel* that Close() wakes must also hand the message back, not destroy
// it on the way out.
TEST(Channel, BlockedSendWokenByCloseReturnsTheMessage) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.Send(lin::Make<int>(1)).ok);
  std::atomic<bool> woke{false};
  SendResult<int> blocked_result;
  std::thread producer([&] {
    blocked_result = ch.Send(lin::Make<int>(2));  // blocks: channel is full
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load()) << "send must block while the channel is full";
  ch.Close();
  producer.join();
  EXPECT_FALSE(blocked_result.ok);
  ASSERT_TRUE(blocked_result.rejected.has_value());
  EXPECT_EQ(*std::as_const(*blocked_result.rejected), 2);
  // The message that was already queued still drains normally.
  auto got = ch.TryRecv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*std::as_const(*got), 1);
}

// Multi-producer close-while-full race (the TSan job runs this suite):
// producers hammer a tiny bounded channel while the main thread closes it
// mid-stream. Conservation must be exact — every message is either
// delivered to the consumer or handed back in SendResult::rejected; none
// vanish, none double up.
TEST(Channel, MultiProducerCloseWhileFullLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  Channel<int> ch(2);
  std::atomic<int> accepted{0};
  std::atomic<int> returned{0};
  std::atomic<long> returned_sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, &accepted, &returned, &returned_sum, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto r = ch.Send(lin::Make<int>(p * kPerProducer + i));
        if (r.ok) {
          ++accepted;
        } else {
          ++returned;
          returned_sum += *std::as_const(*r.rejected);
        }
      }
    });
  }
  std::atomic<int> delivered{0};
  std::atomic<long> delivered_sum{0};
  std::thread consumer([&] {
    while (true) {
      auto got = ch.Recv();
      if (!got.has_value()) {
        return;
      }
      ++delivered;
      delivered_sum += *std::as_const(*got);
    }
  });
  // Let the pipe move a bit, then slam it shut under the producers.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.Close();
  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(accepted.load() + returned.load(), total);
  EXPECT_EQ(delivered.load(), accepted.load())
      << "an accepted message must be drained, a refused one returned";
  const long all_sum = static_cast<long>(total) * (total - 1) / 2;
  EXPECT_EQ(delivered_sum.load() + returned_sum.load(), all_sum)
      << "payloads must be conserved exactly across the close race";
}

TEST(Channel, DrainsQueuedMessagesAfterClose) {
  Channel<int> ch;
  ch.Send(lin::Make<int>(1));
  ch.Send(lin::Make<int>(2));
  ch.Close();
  EXPECT_TRUE(ch.Recv().has_value());
  EXPECT_TRUE(ch.Recv().has_value());
  EXPECT_FALSE(ch.Recv().has_value());
}

TEST(Channel, BoundedBlocksProducerUntilConsumed) {
  Channel<int> ch(2);
  ch.Send(lin::Make<int>(1));
  ch.Send(lin::Make<int>(2));
  std::atomic<bool> third_sent{false};
  std::thread producer([&] {
    ch.Send(lin::Make<int>(3));
    third_sent = true;
  });
  // Give the producer a chance to (wrongly) complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_sent.load()) << "bounded channel must apply backpressure";
  (void)ch.Recv();
  producer.join();
  EXPECT_TRUE(third_sent.load());
}

// Many producers and consumers: every message delivered exactly once.
TEST(Channel, MpmcExactlyOnceDelivery) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  Channel<int> ch(64);
  std::vector<std::thread> threads;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Send(lin::Make<int>(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto got = ch.Recv();
        if (!got.has_value()) {
          return;
        }
        sum += *std::as_const(*got);
        ++received;
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  ch.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  const long expected =
      static_cast<long>(total) * (total - 1) / 2;  // sum 0..total-1
  EXPECT_EQ(sum.load(), expected);
}

// channel.send / channel.recv fault points: both fire at entry, before the
// queue mutex, so an injected panic leaves the channel exactly as it was —
// no half-sent message, nothing dequeued, no lock held during unwind.
class ChannelFaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Reset(); }
};

TEST_F(ChannelFaultPointTest, SendFaultLeavesQueueUntouched) {
  Channel<int> ch;
  util::FaultInjector::Global().ArmOneShot("channel.send",
                                           util::PanicKind::kExplicit);
  EXPECT_THROW(ch.Send(lin::Make<int>(1)), util::PanicError);
  EXPECT_EQ(ch.size(), 0u);  // the faulted send enqueued nothing
  // One-shot consumed: the channel works normally afterwards.
  EXPECT_TRUE(ch.Send(lin::Make<int>(2)).ok);
  auto got = ch.Recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*std::as_const(*got), 2);
}

TEST_F(ChannelFaultPointTest, RecvFaultLeavesMessageQueued) {
  Channel<int> ch;
  ch.Send(lin::Make<int>(42));
  util::FaultInjector::Global().ArmOneShot("channel.recv",
                                           util::PanicKind::kExplicit);
  EXPECT_THROW((void)ch.Recv(), util::PanicError);
  EXPECT_EQ(ch.size(), 1u);  // message survived the faulted receive
  auto got = ch.Recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*std::as_const(*got), 42);
}

// A seeded probabilistic plan on channel.send replays identically: same
// seed, same sequence of firing decisions — the storm-harness determinism
// claim, proven on the channel site.
TEST_F(ChannelFaultPointTest, SeededSendPlanReplaysDeterministically) {
  auto run_plan = [] {
    auto& inj = util::FaultInjector::Global();
    inj.Reset();
    inj.Seed(777);
    inj.ArmProbability("channel.send", 0.3, util::PanicKind::kExplicit);
    Channel<int> ch;
    std::vector<bool> fired;
    int delivered = 0;
    for (int i = 0; i < 64; ++i) {
      try {
        ch.Send(lin::Make<int>(i));
        fired.push_back(false);
        ++delivered;
      } catch (const util::PanicError&) {
        fired.push_back(true);
      }
    }
    EXPECT_EQ(ch.size(), static_cast<std::size_t>(delivered));
    return fired;
  };
  const std::vector<bool> first = run_plan();
  const std::vector<bool> second = run_plan();
  EXPECT_EQ(first, second);
  // The 30% plan must have actually fired some and passed some.
  const int fires = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

}  // namespace
}  // namespace sfi
