#include "src/sfi/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/lin/own.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace sfi {
namespace {

TEST(Channel, SendRecvRoundTrip) {
  Channel<std::string> ch;
  ch.Send(lin::Make<std::string>("hello"));
  auto got = ch.Recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->Borrow(), "hello");
}

TEST(Channel, SenderLosesAccess) {
  Channel<std::string> ch;
  auto msg = lin::Make<std::string>("secret");
  ch.Send(std::move(msg));
  // Zero-copy isolation: the sender's binding is consumed.
  EXPECT_THROW((void)*msg, util::PanicError);
}

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  for (int i = 0; i < 10; ++i) {
    ch.Send(lin::Make<int>(i));
  }
  for (int i = 0; i < 10; ++i) {
    auto got = ch.Recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*std::as_const(*got), i);
  }
}

TEST(Channel, TryRecvEmptyReturnsNullopt) {
  Channel<int> ch;
  EXPECT_FALSE(ch.TryRecv().has_value());
  ch.Send(lin::Make<int>(1));
  EXPECT_TRUE(ch.TryRecv().has_value());
  EXPECT_FALSE(ch.TryRecv().has_value());
}

TEST(Channel, CloseUnblocksReceivers) {
  Channel<int> ch;
  std::thread receiver([&ch] {
    auto got = ch.Recv();
    EXPECT_FALSE(got.has_value());
  });
  ch.Close();
  receiver.join();
}

TEST(Channel, CloseDropsLaterSends) {
  Channel<int> ch;
  ch.Close();
  EXPECT_FALSE(ch.Send(lin::Make<int>(1)));
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, DrainsQueuedMessagesAfterClose) {
  Channel<int> ch;
  ch.Send(lin::Make<int>(1));
  ch.Send(lin::Make<int>(2));
  ch.Close();
  EXPECT_TRUE(ch.Recv().has_value());
  EXPECT_TRUE(ch.Recv().has_value());
  EXPECT_FALSE(ch.Recv().has_value());
}

TEST(Channel, BoundedBlocksProducerUntilConsumed) {
  Channel<int> ch(2);
  ch.Send(lin::Make<int>(1));
  ch.Send(lin::Make<int>(2));
  std::atomic<bool> third_sent{false};
  std::thread producer([&] {
    ch.Send(lin::Make<int>(3));
    third_sent = true;
  });
  // Give the producer a chance to (wrongly) complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_sent.load()) << "bounded channel must apply backpressure";
  (void)ch.Recv();
  producer.join();
  EXPECT_TRUE(third_sent.load());
}

// Many producers and consumers: every message delivered exactly once.
TEST(Channel, MpmcExactlyOnceDelivery) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  Channel<int> ch(64);
  std::vector<std::thread> threads;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Send(lin::Make<int>(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto got = ch.Recv();
        if (!got.has_value()) {
          return;
        }
        sum += *std::as_const(*got);
        ++received;
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  ch.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  const long expected =
      static_cast<long>(total) * (total - 1) / 2;  // sum 0..total-1
  EXPECT_EQ(sum.load(), expected);
}

// channel.send / channel.recv fault points: both fire at entry, before the
// queue mutex, so an injected panic leaves the channel exactly as it was —
// no half-sent message, nothing dequeued, no lock held during unwind.
class ChannelFaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Reset(); }
};

TEST_F(ChannelFaultPointTest, SendFaultLeavesQueueUntouched) {
  Channel<int> ch;
  util::FaultInjector::Global().ArmOneShot("channel.send",
                                           util::PanicKind::kExplicit);
  EXPECT_THROW(ch.Send(lin::Make<int>(1)), util::PanicError);
  EXPECT_EQ(ch.size(), 0u);  // the faulted send enqueued nothing
  // One-shot consumed: the channel works normally afterwards.
  EXPECT_TRUE(ch.Send(lin::Make<int>(2)));
  auto got = ch.Recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*std::as_const(*got), 2);
}

TEST_F(ChannelFaultPointTest, RecvFaultLeavesMessageQueued) {
  Channel<int> ch;
  ch.Send(lin::Make<int>(42));
  util::FaultInjector::Global().ArmOneShot("channel.recv",
                                           util::PanicKind::kExplicit);
  EXPECT_THROW((void)ch.Recv(), util::PanicError);
  EXPECT_EQ(ch.size(), 1u);  // message survived the faulted receive
  auto got = ch.Recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*std::as_const(*got), 42);
}

// A seeded probabilistic plan on channel.send replays identically: same
// seed, same sequence of firing decisions — the storm-harness determinism
// claim, proven on the channel site.
TEST_F(ChannelFaultPointTest, SeededSendPlanReplaysDeterministically) {
  auto run_plan = [] {
    auto& inj = util::FaultInjector::Global();
    inj.Reset();
    inj.Seed(777);
    inj.ArmProbability("channel.send", 0.3, util::PanicKind::kExplicit);
    Channel<int> ch;
    std::vector<bool> fired;
    int delivered = 0;
    for (int i = 0; i < 64; ++i) {
      try {
        ch.Send(lin::Make<int>(i));
        fired.push_back(false);
        ++delivered;
      } catch (const util::PanicError&) {
        fired.push_back(true);
      }
    }
    EXPECT_EQ(ch.size(), static_cast<std::size_t>(delivered));
    return fired;
  };
  const std::vector<bool> first = run_plan();
  const std::vector<bool> second = run_plan();
  EXPECT_EQ(first, second);
  // The 30% plan must have actually fired some and passed some.
  const int fires = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

}  // namespace
}  // namespace sfi
