// RSS dispatcher: flow-to-worker affinity, packet conservation across the
// zero-copy handoff, and a real multi-threaded run with per-worker NFs.
#include "src/net/rss.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/net/mempool.h"
#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"
#include "src/util/panic.h"

namespace net {
namespace {

PacketBatch Traffic(Mempool& pool, std::uint64_t seed, std::size_t n,
                    std::size_t flows = 64) {
  PktSourceConfig cfg;
  cfg.flow_count = flows;
  cfg.seed = seed;
  PktSource src(&pool, cfg);
  PacketBatch batch(n);
  src.RxBurst(batch, n);
  return batch;
}

TEST(Rss, AllPacketsReachExactlyOneWorker) {
  Mempool pool(512, 2048);
  RssDispatcher rss(4, /*queue_depth=*/0);
  rss.Dispatch(Traffic(pool, 1, 256));
  rss.Shutdown();
  EXPECT_EQ(pool.in_use(), 256u) << "packets alive in worker queues";

  std::size_t total = 0;
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (auto batch = rss.queue(w).TryRecv()) {
      total += (*batch).Borrow()->size();
      // the Own<PacketBatch> drops here, returning its buffers
    }
  }
  EXPECT_EQ(total, 256u) << "conservation across the handoff";
  EXPECT_EQ(pool.in_use(), 0u) << "drained batches returned their buffers";
}

TEST(Rss, FlowAffinityIsStable) {
  Mempool pool(4096, 2048);
  RssDispatcher rss(8);
  // The same flow must map to the same worker on every packet.
  PacketBatch batch = Traffic(pool, 2, 512);
  std::map<std::uint32_t, std::size_t> flow_to_worker;
  for (PacketBuf& pkt : batch) {
    const auto src_ip = pkt.Tuple().src_ip;
    const std::size_t worker = rss.WorkerFor(pkt);
    auto [it, inserted] = flow_to_worker.emplace(src_ip, worker);
    if (!inserted) {
      EXPECT_EQ(it->second, worker) << "flow split across workers";
    }
  }
  // And with 64 flows over 8 workers, more than one worker is used.
  std::set<std::size_t> used;
  for (const auto& [flow, worker] : flow_to_worker) {
    used.insert(worker);
  }
  EXPECT_GT(used.size(), 3u) << "hash spreads flows";
}

TEST(Rss, DispatcherCannotTouchSteeredBatches) {
  Mempool pool(64, 2048);
  RssDispatcher rss(1, 0);
  PacketBatch batch = Traffic(pool, 3, 8);
  rss.Dispatch(std::move(batch));
  // The moved-from batch is empty; the packets now belong to the worker.
  EXPECT_EQ(batch.size(), 0u);
  auto received = rss.queue(0).TryRecv();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ((*received).Borrow()->size(), 8u);
}

TEST(Rss, MultiThreadedWorkersProcessEverything) {
  constexpr std::size_t kWorkers = 3;
  constexpr int kBatches = 50;
  constexpr std::size_t kBatchSize = 32;

  Mempool pool(4096, 2048);
  RssDispatcher rss(kWorkers, /*queue_depth=*/16);

  std::atomic<std::size_t> processed{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &processed, w] {
      NatRewrite nat(0x05050505);  // per-worker state: no locks needed
      while (auto handle = rss.queue(w).Recv()) {
        PacketBatch batch = handle->Take();
        PacketBatch out = nat.Process(std::move(batch));
        processed += out.size();
      }
    });
  }

  for (int i = 0; i < kBatches; ++i) {
    rss.Dispatch(Traffic(pool, 100 + static_cast<std::uint64_t>(i),
                         kBatchSize));
  }
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(processed.load(), kBatches * kBatchSize);
  EXPECT_EQ(pool.in_use(), 0u) << "all buffers returned after processing";
}

TEST(Rss, ZeroWorkersRejected) {
  EXPECT_THROW(RssDispatcher rss(0), util::PanicError);
}

TEST(Rss, OutOfRangeQueuePanics) {
  RssDispatcher rss(2);
  EXPECT_THROW((void)rss.queue(5), util::PanicError);
}

}  // namespace
}  // namespace net
