// RSS dispatcher: flow-to-worker affinity, packet conservation across the
// zero-copy handoff, counter semantics, backpressure, shutdown, and a real
// multi-threaded run with per-worker NFs.
#include "src/net/rss.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/mempool.h"
#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"  // FlowBatch/FlowWork for bufferless steering
#include "src/util/panic.h"

namespace net {
namespace {

PacketBatch Traffic(Mempool& pool, std::uint64_t seed, std::size_t n,
                    std::size_t flows = 64) {
  PktSourceConfig cfg;
  cfg.flow_count = flows;
  cfg.seed = seed;
  PktSource src(&pool, cfg);
  PacketBatch batch(n);
  src.RxBurst(batch, n);
  return batch;
}

TEST(Rss, AllPacketsReachExactlyOneWorker) {
  Mempool pool(512, 2048);
  RssDispatcher rss(4, /*queue_depth=*/0);
  rss.Dispatch(Traffic(pool, 1, 256));
  rss.Shutdown();
  EXPECT_EQ(pool.in_use(), 256u) << "packets alive in worker queues";

  std::size_t total = 0;
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (auto batch = rss.queue(w).TryRecv()) {
      total += (*batch).Borrow()->size();
      // the Own<PacketBatch> drops here, returning its buffers
    }
  }
  EXPECT_EQ(total, 256u) << "conservation across the handoff";
  EXPECT_EQ(pool.in_use(), 0u) << "drained batches returned their buffers";
}

TEST(Rss, FlowAffinityIsStable) {
  Mempool pool(4096, 2048);
  RssDispatcher rss(8);
  // The same flow must map to the same worker on every packet.
  PacketBatch batch = Traffic(pool, 2, 512);
  std::map<std::uint32_t, std::size_t> flow_to_worker;
  for (PacketBuf& pkt : batch) {
    const auto src_ip = pkt.Tuple().src_ip;
    const std::size_t worker = rss.WorkerFor(pkt);
    auto [it, inserted] = flow_to_worker.emplace(src_ip, worker);
    if (!inserted) {
      EXPECT_EQ(it->second, worker) << "flow split across workers";
    }
  }
  // And with 64 flows over 8 workers, more than one worker is used.
  std::set<std::size_t> used;
  for (const auto& [flow, worker] : flow_to_worker) {
    used.insert(worker);
  }
  EXPECT_GT(used.size(), 3u) << "hash spreads flows";
}

TEST(Rss, DispatcherCannotTouchSteeredBatches) {
  Mempool pool(64, 2048);
  RssDispatcher rss(1, 0);
  PacketBatch batch = Traffic(pool, 3, 8);
  rss.Dispatch(std::move(batch));
  // The moved-from batch is empty; the packets now belong to the worker.
  EXPECT_EQ(batch.size(), 0u);
  auto received = rss.queue(0).TryRecv();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ((*received).Borrow()->size(), 8u);
}

TEST(Rss, BatchesSteeredCountsDispatchCallsNotSubBatches) {
  Mempool pool(512, 2048);
  RssDispatcher rss(4, /*queue_depth=*/0);
  // One input batch with many flows fans out into up to 4 sub-batches; the
  // input-batch counter must still read 1 (it used to over-report by
  // counting the fan-out).
  rss.Dispatch(Traffic(pool, 7, 128));
  EXPECT_EQ(rss.batches_steered(), 1u);
  EXPECT_GE(rss.sub_batches_steered(), 1u);
  EXPECT_LE(rss.sub_batches_steered(), 4u);
  std::uint64_t per_worker_sum = 0;
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    per_worker_sum += rss.steered_to(w);
  }
  EXPECT_EQ(per_worker_sum, rss.sub_batches_steered());

  rss.Dispatch(Traffic(pool, 8, 128));
  EXPECT_EQ(rss.batches_steered(), 2u);

  rss.Shutdown();
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (rss.queue(w).TryRecv()) {
    }
  }
}

TEST(Rss, ConcurrentDispatchKeepsAffinityAndExactCounters) {
  // Two producers steer flow descriptors concurrently (descriptors, not
  // buffers: mempools are single-owner, so the bufferless FlowBatch flavour
  // is the one that legitimately admits multi-producer dispatch).
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatchesPerProducer = 100;
  constexpr std::size_t kBatchSize = 32;

  BasicRssDispatcher<FlowBatch> rss(kWorkers, /*queue_depth=*/0);

  std::atomic<std::size_t> received{0};
  std::atomic<bool> misrouted{false};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &received, &misrouted, w] {
      while (auto handle = rss.queue(w).Recv()) {
        FlowBatch batch = handle->Take();
        for (const FlowWork& fw : batch) {
          if (rss.WorkerForTuple(fw.tuple) != w) {
            misrouted = true;
          }
        }
        received += batch.size();
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&rss, p] {
      FlowSampler sampler(64, 0.0, 1000 + static_cast<std::uint64_t>(p));
      FlowFeeder feeder(&sampler);
      for (int i = 0; i < kBatchesPerProducer; ++i) {
        rss.Dispatch(feeder.Next(kBatchSize));
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }

  EXPECT_FALSE(misrouted.load()) << "flow steered to the wrong worker";
  EXPECT_EQ(received.load(), 2u * kBatchesPerProducer * kBatchSize);
  EXPECT_EQ(rss.batches_steered(), 2u * kBatchesPerProducer)
      << "dispatch-call counter must be exact under concurrent producers";
  std::uint64_t per_worker_sum = 0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    per_worker_sum += rss.steered_to(w);
  }
  EXPECT_EQ(per_worker_sum, rss.sub_batches_steered());
}

TEST(Rss, BackpressureBlocksDispatchAtQueueDepth) {
  // One worker, depth 2, nobody draining: the first two dispatches fill the
  // ring, the third must block until a slot frees up.
  BasicRssDispatcher<FlowBatch> rss(1, /*queue_depth=*/2);
  FlowSampler sampler(8, 0.0, 5);
  FlowFeeder feeder(&sampler);
  rss.Dispatch(feeder.Next(4));
  rss.Dispatch(feeder.Next(4));
  ASSERT_EQ(rss.queue(0).size(), 2u);

  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    rss.Dispatch(feeder.Next(4));
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_done.load()) << "dispatch must block on a full queue";

  ASSERT_TRUE(rss.queue(0).Recv().has_value());  // free one slot
  producer.join();
  EXPECT_TRUE(third_done.load());
  rss.Shutdown();
  while (rss.queue(0).TryRecv()) {
  }
}

TEST(Rss, ShutdownWakesWorkersBlockedInReceive) {
  constexpr std::size_t kWorkers = 3;
  RssDispatcher rss(kWorkers, /*queue_depth=*/4);
  std::atomic<std::size_t> exited{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &exited, w] {
      // Nothing is ever dispatched: every worker parks inside Recv().
      while (rss.queue(w).Recv()) {
      }
      ++exited;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(exited.load(), 0u) << "workers should be blocked in Recv";
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(exited.load(), kWorkers) << "close must wake and release all";
}

TEST(Rss, MultiThreadedWorkersProcessEverything) {
  constexpr std::size_t kWorkers = 3;
  constexpr int kBatches = 50;
  constexpr std::size_t kBatchSize = 32;

  Mempool pool(4096, 2048);
  RssDispatcher rss(kWorkers, /*queue_depth=*/16);

  // The pool is owned by this (dispatching) thread, so workers must not
  // destroy packets: they process and *stash* the batches, and the owning
  // thread reclaims the buffers after the workers are done (mempool.h's
  // single-owner contract; net::Runtime avoids the stash by giving every
  // worker its own pool and steering descriptors instead).
  std::atomic<std::size_t> processed{0};
  std::vector<std::vector<PacketBatch>> stashes(kWorkers);
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &processed, &stashes, w] {
      NatRewrite nat(0x05050505);  // per-worker state: no locks needed
      while (auto handle = rss.queue(w).Recv()) {
        PacketBatch batch = handle->Take();
        PacketBatch out = nat.Process(std::move(batch));
        processed += out.size();
        stashes[w].push_back(std::move(out));
      }
    });
  }

  for (int i = 0; i < kBatches; ++i) {
    rss.Dispatch(Traffic(pool, 100 + static_cast<std::uint64_t>(i),
                         kBatchSize));
  }
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(processed.load(), kBatches * kBatchSize);
  EXPECT_EQ(pool.in_use(), kBatches * kBatchSize)
      << "buffers still alive in the stashes";
  stashes.clear();  // owner thread returns every buffer
  EXPECT_EQ(pool.in_use(), 0u) << "all buffers returned after processing";
}

// Silent-loss bugfix: a sub-batch refused by a closed worker channel used
// to disappear without a trace (`sent < expected` was invisible). The
// refusal and its item count are now first-class counters.
TEST(Rss, DispatchAfterShutdownCountsRefusalsAndDroppedItems) {
  BasicRssDispatcher<FlowBatch> rss(2, /*queue_depth=*/0);
  FlowSampler sampler(16, 0.0, 9);
  FlowFeeder feeder(&sampler);
  EXPECT_GE(rss.Dispatch(feeder.Next(32)), 1u);
  EXPECT_EQ(rss.refused_sub_batches(), 0u);
  EXPECT_EQ(rss.dropped_items(), 0u);

  rss.Shutdown();
  EXPECT_EQ(rss.Dispatch(feeder.Next(32)), 0u)
      << "closed channels refuse every sub-batch";
  EXPECT_GE(rss.refused_sub_batches(), 1u);
  EXPECT_LE(rss.refused_sub_batches(), 2u);
  EXPECT_EQ(rss.dropped_items(), 32u)
      << "every dropped item must be accounted";
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (rss.queue(w).TryRecv()) {
    }
  }
}

// Work stealing: a steal moves whole flows (every queued item of each
// chosen flow, in order), repoints them in the migration table, and leaves
// nothing of a stolen flow behind on the victim.
TEST(Rss, StealMovesWholeFlowsRepointsHomeAndKeepsFifo) {
  BasicRssDispatcher<FlowBatch> rss(2, /*queue_depth=*/0, /*stealing=*/true);
  FlowSampler sampler(32, 0.0, 11);
  FlowFeeder feeder(&sampler);
  std::size_t dispatched = 0;
  for (int i = 0; i < 8; ++i) {
    FlowBatch batch = feeder.Next(32);
    dispatched += batch.size();
    rss.Dispatch(std::move(batch));
  }

  std::unordered_set<std::uint64_t> committed_keys;
  auto result = rss.Steal(
      /*victim=*/0, /*thief=*/1,
      [] { return std::unordered_set<std::uint64_t>{}; },
      [&committed_keys](const auto& r) {
        committed_keys.insert(r.keys.begin(), r.keys.end());
      });
  ASSERT_GT(result.items, 0u) << "a loaded victim queue must yield a steal";
  const std::unordered_set<std::uint64_t> stolen_keys(result.keys.begin(),
                                                      result.keys.end());
  EXPECT_EQ(committed_keys, stolen_keys)
      << "commit must see the final key set while the locks are held";
  EXPECT_EQ(rss.migrated_flows(), stolen_keys.size());

  // Every stolen item belongs to a migrated flow, routes to the thief now,
  // and per-flow sequence numbers stay strictly increasing across slices.
  std::unordered_map<std::uint64_t, std::uint64_t> last_seq;
  std::size_t stolen_items = 0;
  for (const FlowBatch& slice : result.batches) {
    for (const FlowWork& fw : slice) {
      ++stolen_items;
      const std::uint64_t key = rss.FlowKey(fw.tuple);
      EXPECT_TRUE(stolen_keys.count(key) != 0);
      EXPECT_EQ(rss.WorkerForTuple(fw.tuple), 1u) << "flow must follow steal";
      auto [it, fresh] = last_seq.emplace(key, fw.seq);
      if (!fresh) {
        EXPECT_LT(it->second, fw.seq) << "per-flow FIFO broken by steal";
        it->second = fw.seq;
      }
    }
  }
  EXPECT_EQ(stolen_items, result.items);

  // Conservation: stolen + still-queued == dispatched, and the victim keeps
  // no item of any stolen flow (a leftover would break per-flow ordering).
  rss.Shutdown();
  std::size_t remaining = 0;
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (auto handle = rss.queue(w).TryRecv()) {
      FlowBatch batch = (*handle).Take();
      for (const FlowWork& fw : batch) {
        if (w == 0) {
          EXPECT_EQ(stolen_keys.count(rss.FlowKey(fw.tuple)), 0u)
              << "victim kept an item of a stolen flow";
        }
      }
      remaining += batch.size();
    }
  }
  EXPECT_EQ(remaining + result.items, dispatched);
}

// The off-limits set (the victim's in-flight flows) is honoured: a steal
// never touches an excluded flow, and excluding everything yields nothing.
TEST(Rss, StealSkipsExcludedFlows) {
  BasicRssDispatcher<FlowBatch> rss(2, /*queue_depth=*/0, /*stealing=*/true);
  FlowSampler sampler(32, 0.0, 13);
  FlowFeeder feeder(&sampler);
  for (int i = 0; i < 4; ++i) {
    rss.Dispatch(feeder.Next(32));
  }
  std::unordered_set<std::uint64_t> all_keys;
  for (std::size_t i = 0; i < sampler.flow_count(); ++i) {
    all_keys.insert(rss.FlowKey(sampler.FlowAt(i)));
  }
  bool committed = false;
  auto result = rss.Steal(
      0, 1, [&all_keys] { return all_keys; },
      [&committed](const auto&) { committed = true; });
  EXPECT_TRUE(result.batches.empty());
  EXPECT_EQ(result.items, 0u);
  EXPECT_FALSE(committed) << "an empty steal must not commit";
  EXPECT_EQ(rss.migrated_flows(), 0u);
  for (std::size_t i = 0; i < sampler.flow_count(); ++i) {
    const FiveTuple tuple = sampler.FlowAt(i);
    EXPECT_EQ(rss.WorkerForTuple(tuple),
              static_cast<std::size_t>(rss.FlowKey(tuple) % 2))
        << "no migration may happen when everything is off-limits";
  }
  rss.Shutdown();
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (rss.queue(w).TryRecv()) {
    }
  }
}

// Migration-table lifecycle under flow churn: before eviction existed,
// every flow ever stolen kept its table entry forever (only a steal-back
// removed a key), so churning through fresh flows grew the table without
// bound. With epoch/TTL eviction the table holds only recently-stolen
// flows, and an evicted flow routes back to its hash home.
TEST(Rss, MigrationTableEvictsQuietFlows) {
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kFlowsPerRound = 16;
  constexpr std::uint64_t kTtl = 4;  // dispatches per round below
  BasicRssDispatcher<FlowBatch> rss(2, /*queue_depth=*/0, /*stealing=*/true);

  auto drain = [&rss] {
    for (std::size_t w = 0; w < rss.worker_count(); ++w) {
      while (rss.queue(w).TryRecv().status == sfi::RecvStatus::kValue) {
      }
    }
  };

  std::size_t total_stolen_keys = 0;
  std::size_t peak_table = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // A fresh flow population every round — the churn that used to leak.
    FlowSampler sampler(kFlowsPerRound, 0.0,
                        static_cast<std::uint64_t>(100 + round));
    FlowFeeder feeder(&sampler);
    for (int i = 0; i < 4; ++i) {
      rss.Dispatch(feeder.Next(kFlowsPerRound));
    }
    const auto result = rss.Steal(
        /*victim=*/0, /*thief=*/1,
        [] { return std::unordered_set<std::uint64_t>{}; },
        [](const auto&) {});
    total_stolen_keys += result.keys.size();
    drain();
    // The idle thief sweeps its own stale entries; this round's are too
    // young (epoch == now), earlier rounds' are >= kTtl dispatches old.
    rss.EvictStaleMigrations(/*home=*/1, kTtl);
    peak_table = std::max(peak_table, rss.migrated_flows());
  }
  ASSERT_GT(total_stolen_keys, kFlowsPerRound)
      << "churn must actually migrate flows across rounds";
  EXPECT_LE(peak_table, 2 * kFlowsPerRound)
      << "table must stay bounded by the live flow population, not by the "
         "cumulative churn";
  EXPECT_LT(rss.migrated_flows(), total_stolen_keys);
  EXPECT_GT(rss.migration_evictions(), 0u);

  // Age out the final round too: advance the epoch past the TTL with empty
  // dispatches, then sweep. The table must empty and every flow must route
  // by hash again.
  for (std::uint64_t i = 0; i < kTtl; ++i) {
    rss.Dispatch(FlowBatch{});
  }
  rss.EvictStaleMigrations(/*home=*/1, kTtl);
  EXPECT_EQ(rss.migrated_flows(), 0u);
  FlowSampler probe(kFlowsPerRound, 0.0, 100);  // round 0's population
  for (std::size_t i = 0; i < probe.flow_count(); ++i) {
    const FiveTuple tuple = probe.FlowAt(i);
    EXPECT_EQ(rss.WorkerForTuple(tuple),
              static_cast<std::size_t>(rss.FlowKey(tuple) % 2))
        << "evicted flow must fall back to its hash home";
  }
  rss.Shutdown();
}

TEST(Rss, ZeroWorkersRejected) {
  EXPECT_THROW(RssDispatcher rss(0), util::PanicError);
}

TEST(Rss, OutOfRangeQueuePanics) {
  RssDispatcher rss(2);
  EXPECT_THROW((void)rss.queue(5), util::PanicError);
}

}  // namespace
}  // namespace net
