// RSS dispatcher: flow-to-worker affinity, packet conservation across the
// zero-copy handoff, counter semantics, backpressure, shutdown, and a real
// multi-threaded run with per-worker NFs.
#include "src/net/rss.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/net/mempool.h"
#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"  // FlowBatch/FlowWork for bufferless steering
#include "src/util/panic.h"

namespace net {
namespace {

PacketBatch Traffic(Mempool& pool, std::uint64_t seed, std::size_t n,
                    std::size_t flows = 64) {
  PktSourceConfig cfg;
  cfg.flow_count = flows;
  cfg.seed = seed;
  PktSource src(&pool, cfg);
  PacketBatch batch(n);
  src.RxBurst(batch, n);
  return batch;
}

TEST(Rss, AllPacketsReachExactlyOneWorker) {
  Mempool pool(512, 2048);
  RssDispatcher rss(4, /*queue_depth=*/0);
  rss.Dispatch(Traffic(pool, 1, 256));
  rss.Shutdown();
  EXPECT_EQ(pool.in_use(), 256u) << "packets alive in worker queues";

  std::size_t total = 0;
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (auto batch = rss.queue(w).TryRecv()) {
      total += (*batch).Borrow()->size();
      // the Own<PacketBatch> drops here, returning its buffers
    }
  }
  EXPECT_EQ(total, 256u) << "conservation across the handoff";
  EXPECT_EQ(pool.in_use(), 0u) << "drained batches returned their buffers";
}

TEST(Rss, FlowAffinityIsStable) {
  Mempool pool(4096, 2048);
  RssDispatcher rss(8);
  // The same flow must map to the same worker on every packet.
  PacketBatch batch = Traffic(pool, 2, 512);
  std::map<std::uint32_t, std::size_t> flow_to_worker;
  for (PacketBuf& pkt : batch) {
    const auto src_ip = pkt.Tuple().src_ip;
    const std::size_t worker = rss.WorkerFor(pkt);
    auto [it, inserted] = flow_to_worker.emplace(src_ip, worker);
    if (!inserted) {
      EXPECT_EQ(it->second, worker) << "flow split across workers";
    }
  }
  // And with 64 flows over 8 workers, more than one worker is used.
  std::set<std::size_t> used;
  for (const auto& [flow, worker] : flow_to_worker) {
    used.insert(worker);
  }
  EXPECT_GT(used.size(), 3u) << "hash spreads flows";
}

TEST(Rss, DispatcherCannotTouchSteeredBatches) {
  Mempool pool(64, 2048);
  RssDispatcher rss(1, 0);
  PacketBatch batch = Traffic(pool, 3, 8);
  rss.Dispatch(std::move(batch));
  // The moved-from batch is empty; the packets now belong to the worker.
  EXPECT_EQ(batch.size(), 0u);
  auto received = rss.queue(0).TryRecv();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ((*received).Borrow()->size(), 8u);
}

TEST(Rss, BatchesSteeredCountsDispatchCallsNotSubBatches) {
  Mempool pool(512, 2048);
  RssDispatcher rss(4, /*queue_depth=*/0);
  // One input batch with many flows fans out into up to 4 sub-batches; the
  // input-batch counter must still read 1 (it used to over-report by
  // counting the fan-out).
  rss.Dispatch(Traffic(pool, 7, 128));
  EXPECT_EQ(rss.batches_steered(), 1u);
  EXPECT_GE(rss.sub_batches_steered(), 1u);
  EXPECT_LE(rss.sub_batches_steered(), 4u);
  std::uint64_t per_worker_sum = 0;
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    per_worker_sum += rss.steered_to(w);
  }
  EXPECT_EQ(per_worker_sum, rss.sub_batches_steered());

  rss.Dispatch(Traffic(pool, 8, 128));
  EXPECT_EQ(rss.batches_steered(), 2u);

  rss.Shutdown();
  for (std::size_t w = 0; w < rss.worker_count(); ++w) {
    while (rss.queue(w).TryRecv()) {
    }
  }
}

TEST(Rss, ConcurrentDispatchKeepsAffinityAndExactCounters) {
  // Two producers steer flow descriptors concurrently (descriptors, not
  // buffers: mempools are single-owner, so the bufferless FlowBatch flavour
  // is the one that legitimately admits multi-producer dispatch).
  constexpr std::size_t kWorkers = 4;
  constexpr int kBatchesPerProducer = 100;
  constexpr std::size_t kBatchSize = 32;

  BasicRssDispatcher<FlowBatch> rss(kWorkers, /*queue_depth=*/0);

  std::atomic<std::size_t> received{0};
  std::atomic<bool> misrouted{false};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &received, &misrouted, w] {
      while (auto handle = rss.queue(w).Recv()) {
        FlowBatch batch = handle->Take();
        for (const FlowWork& fw : batch) {
          if (rss.WorkerForTuple(fw.tuple) != w) {
            misrouted = true;
          }
        }
        received += batch.size();
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&rss, p] {
      FlowSampler sampler(64, 0.0, 1000 + static_cast<std::uint64_t>(p));
      FlowFeeder feeder(&sampler);
      for (int i = 0; i < kBatchesPerProducer; ++i) {
        rss.Dispatch(feeder.Next(kBatchSize));
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }

  EXPECT_FALSE(misrouted.load()) << "flow steered to the wrong worker";
  EXPECT_EQ(received.load(), 2u * kBatchesPerProducer * kBatchSize);
  EXPECT_EQ(rss.batches_steered(), 2u * kBatchesPerProducer)
      << "dispatch-call counter must be exact under concurrent producers";
  std::uint64_t per_worker_sum = 0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    per_worker_sum += rss.steered_to(w);
  }
  EXPECT_EQ(per_worker_sum, rss.sub_batches_steered());
}

TEST(Rss, BackpressureBlocksDispatchAtQueueDepth) {
  // One worker, depth 2, nobody draining: the first two dispatches fill the
  // ring, the third must block until a slot frees up.
  BasicRssDispatcher<FlowBatch> rss(1, /*queue_depth=*/2);
  FlowSampler sampler(8, 0.0, 5);
  FlowFeeder feeder(&sampler);
  rss.Dispatch(feeder.Next(4));
  rss.Dispatch(feeder.Next(4));
  ASSERT_EQ(rss.queue(0).size(), 2u);

  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    rss.Dispatch(feeder.Next(4));
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_done.load()) << "dispatch must block on a full queue";

  ASSERT_TRUE(rss.queue(0).Recv().has_value());  // free one slot
  producer.join();
  EXPECT_TRUE(third_done.load());
  rss.Shutdown();
  while (rss.queue(0).TryRecv()) {
  }
}

TEST(Rss, ShutdownWakesWorkersBlockedInReceive) {
  constexpr std::size_t kWorkers = 3;
  RssDispatcher rss(kWorkers, /*queue_depth=*/4);
  std::atomic<std::size_t> exited{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &exited, w] {
      // Nothing is ever dispatched: every worker parks inside Recv().
      while (rss.queue(w).Recv()) {
      }
      ++exited;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(exited.load(), 0u) << "workers should be blocked in Recv";
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(exited.load(), kWorkers) << "close must wake and release all";
}

TEST(Rss, MultiThreadedWorkersProcessEverything) {
  constexpr std::size_t kWorkers = 3;
  constexpr int kBatches = 50;
  constexpr std::size_t kBatchSize = 32;

  Mempool pool(4096, 2048);
  RssDispatcher rss(kWorkers, /*queue_depth=*/16);

  // The pool is owned by this (dispatching) thread, so workers must not
  // destroy packets: they process and *stash* the batches, and the owning
  // thread reclaims the buffers after the workers are done (mempool.h's
  // single-owner contract; net::Runtime avoids the stash by giving every
  // worker its own pool and steering descriptors instead).
  std::atomic<std::size_t> processed{0};
  std::vector<std::vector<PacketBatch>> stashes(kWorkers);
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&rss, &processed, &stashes, w] {
      NatRewrite nat(0x05050505);  // per-worker state: no locks needed
      while (auto handle = rss.queue(w).Recv()) {
        PacketBatch batch = handle->Take();
        PacketBatch out = nat.Process(std::move(batch));
        processed += out.size();
        stashes[w].push_back(std::move(out));
      }
    });
  }

  for (int i = 0; i < kBatches; ++i) {
    rss.Dispatch(Traffic(pool, 100 + static_cast<std::uint64_t>(i),
                         kBatchSize));
  }
  rss.Shutdown();
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(processed.load(), kBatches * kBatchSize);
  EXPECT_EQ(pool.in_use(), kBatches * kBatchSize)
      << "buffers still alive in the stashes";
  stashes.clear();  // owner thread returns every buffer
  EXPECT_EQ(pool.in_use(), 0u) << "all buffers returned after processing";
}

TEST(Rss, ZeroWorkersRejected) {
  EXPECT_THROW(RssDispatcher rss(0), util::PanicError);
}

TEST(Rss, OutOfRangeQueuePanics) {
  RssDispatcher rss(2);
  EXPECT_THROW((void)rss.queue(5), util::PanicError);
}

}  // namespace
}  // namespace net
