// Mempool + PacketBuf: buffer conservation is the key invariant — every
// buffer allocated is freed exactly once, no matter how packets move, drop,
// or unwind through panics.
#include "src/net/mempool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/batch.h"
#include "src/net/packet.h"
#include "src/util/panic.h"

namespace net {
namespace {

TEST(Mempool, AllocUntilExhaustion) {
  Mempool pool(4, 256);
  std::uint32_t slot;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.Alloc(&slot));
  }
  EXPECT_FALSE(pool.Alloc(&slot)) << "5th alloc from a 4-buffer pool";
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.in_use(), 4u);
}

TEST(Mempool, FreeMakesSlotReusable) {
  Mempool pool(1, 256);
  std::uint32_t slot;
  ASSERT_TRUE(pool.Alloc(&slot));
  pool.Free(slot);
  std::uint32_t again;
  ASSERT_TRUE(pool.Alloc(&again));
  EXPECT_EQ(again, slot);
}

TEST(Mempool, SlotsAreDisjointBuffers) {
  Mempool pool(8, 64);
  std::uint32_t a, b;
  ASSERT_TRUE(pool.Alloc(&a));
  ASSERT_TRUE(pool.Alloc(&b));
  EXPECT_NE(pool.Data(a), pool.Data(b));
  EXPECT_GE(static_cast<std::size_t>(
                std::abs(pool.Data(a) - pool.Data(b))),
            64u);
}

TEST(Mempool, ForeignSlotFreePanics) {
  Mempool pool(2, 64);
  EXPECT_THROW(pool.Free(7), util::PanicError);
}

TEST(Mempool, DoubleFreeOfFullPoolPanics) {
  // With the pool already full, a double-free would push the freelist past
  // capacity; the capacity assertion catches it even in unchecked builds
  // (checked builds panic earlier, via the free-slot bitmap).
  Mempool pool(4, 64);
  std::uint32_t slot;
  ASSERT_TRUE(pool.Alloc(&slot));
  pool.Free(slot);
  EXPECT_EQ(pool.available(), pool.capacity());
  EXPECT_THROW(pool.Free(slot), util::PanicError);
}

#if LINSYS_CHECKED_OWNERSHIP
TEST(MempoolChecked, DoubleFreeWithOutstandingBuffersPanics) {
  // The dangerous variant: the pool is NOT full, so the freelist would stay
  // under capacity and silently hand the same slot to two owners. Only the
  // checked-mode bitmap can catch this one.
  Mempool pool(4, 64);
  std::uint32_t a, b;
  ASSERT_TRUE(pool.Alloc(&a));
  ASSERT_TRUE(pool.Alloc(&b));
  pool.Free(a);
  EXPECT_THROW(pool.Free(a), util::PanicError);
  pool.Free(b);
}

TEST(MempoolChecked, CrossThreadUsePanics) {
  Mempool pool(4, 64);
  std::uint32_t slot;
  ASSERT_TRUE(pool.Alloc(&slot));  // binds the pool to this thread
  std::atomic<bool> panicked{false};
  std::thread intruder([&pool, &panicked] {
    std::uint32_t s;
    try {
      (void)pool.Alloc(&s);
    } catch (const util::PanicError&) {
      panicked = true;
    }
  });
  intruder.join();
  EXPECT_TRUE(panicked.load())
      << "single-owner contract: other threads must be rejected";
  pool.Free(slot);  // owner thread continues to work
}
#endif  // LINSYS_CHECKED_OWNERSHIP

TEST(PacketBuf, ReturnsBufferOnDestruction) {
  Mempool pool(2, 256);
  {
    PacketBuf pkt = PacketBuf::Alloc(&pool, 64);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pool.in_use(), 1u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketBuf, MoveTransfersExactlyOneOwner) {
  Mempool pool(2, 256);
  PacketBuf a = PacketBuf::Alloc(&pool, 64);
  PacketBuf b = std::move(a);
  EXPECT_FALSE(a.has_value());
  EXPECT_TRUE(b.has_value());
  EXPECT_EQ(pool.in_use(), 1u) << "a move is not a second allocation";
  EXPECT_THROW((void)a.data(), util::PanicError) << "use-after-move";
  b.Drop();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_THROW((void)b.data(), util::PanicError) << "use-after-drop";
}

TEST(PacketBuf, AllocFailureYieldsEmptyHandle) {
  Mempool pool(1, 256);
  PacketBuf a = PacketBuf::Alloc(&pool, 64);
  PacketBuf b = PacketBuf::Alloc(&pool, 64);
  EXPECT_TRUE(a.has_value());
  EXPECT_FALSE(b.has_value());
}

TEST(PacketBuf, OversizeFramePanics) {
  Mempool pool(1, 128);
  EXPECT_THROW((void)PacketBuf::Alloc(&pool, 256), util::PanicError);
}

TEST(PacketBuf, HeaderAccessOnTinyFramePanics) {
  Mempool pool(1, 256);
  PacketBuf pkt = PacketBuf::Alloc(&pool, 10);  // shorter than Eth+IPv4
  EXPECT_THROW((void)pkt.ipv4(), util::PanicError);
}

TEST(Batch, RetainDropsAndPreservesOrder) {
  Mempool pool(8, 256);
  PacketBatch batch;
  for (int i = 0; i < 8; ++i) {
    PacketBuf pkt = PacketBuf::Alloc(&pool, 64);
    BuildFrame(pkt, FiveTuple{static_cast<std::uint32_t>(i), 2, 3, 4, 17});
    batch.Push(std::move(pkt));
  }
  // Keep even src_ip packets.
  batch.Retain([](PacketBuf& p) { return p.Tuple().src_ip % 2 == 0; });
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(pool.in_use(), 4u) << "dropped packets returned their buffers";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].Tuple().src_ip, i * 2) << "order preserved";
  }
}

TEST(Batch, RetainAllAndNone) {
  Mempool pool(4, 256);
  PacketBatch batch;
  for (int i = 0; i < 4; ++i) {
    batch.Push(PacketBuf::Alloc(&pool, 64));
  }
  batch.Retain([](PacketBuf&) { return true; });
  EXPECT_EQ(batch.size(), 4u);
  batch.Retain([](PacketBuf&) { return false; });
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(Batch, OutOfRangeIndexPanics) {
  PacketBatch batch;
  EXPECT_THROW((void)batch[0], util::PanicError);
}

TEST(Batch, BuffersReclaimedWhenUnwindDestroysBatch) {
  Mempool pool(4, 256);
  try {
    PacketBatch batch;
    for (int i = 0; i < 4; ++i) {
      batch.Push(PacketBuf::Alloc(&pool, 64));
    }
    util::Panic("stage fault mid-batch");
  } catch (const util::PanicError&) {
  }
  EXPECT_EQ(pool.in_use(), 0u)
      << "a faulting stage must not leak packet buffers";
}

TEST(Batch, MoveIsOwnershipTransfer) {
  Mempool pool(2, 256);
  PacketBatch a;
  a.Push(PacketBuf::Alloc(&pool, 64));
  PacketBatch b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(pool.in_use(), 1u);
}

}  // namespace
}  // namespace net
