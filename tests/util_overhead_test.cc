// Unit tests for util::OverheadPerCall — the signed, batch-matched
// per-remote-invocation overhead used by bench_parallel.
#include "src/util/overhead.h"

#include <gtest/gtest.h>

namespace {

TEST(OverheadPerCall, PositiveWhenIsolationCostsCycles) {
  // 100 batches each, 5 stages, 1 worker: isolated run spends 500 extra
  // cycles per batch -> 100 cycles per call.
  const double v = util::OverheadPerCall(/*isolated_cycles=*/150000, 100,
                                         /*direct_cycles=*/100000, 100,
                                         /*stages=*/5, /*workers=*/1);
  EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(OverheadPerCall, SignedWhenIsolatedRunBeatsBaseline) {
  // The isolated run finishing faster yields a *negative* overhead — the
  // documented noise signal, not a clamped zero.
  const double v = util::OverheadPerCall(90000, 100, 100000, 100, 5, 1);
  EXPECT_DOUBLE_EQ(v, -20.0);
  EXPECT_LT(v, 0.0);
}

TEST(OverheadPerCall, NormalizesMismatchedBatchCounts) {
  // Direct run retired twice the batches in the same wall time. Raw-total
  // subtraction would report (100000-100000)=0 extra cycles; per-batch
  // matching sees the isolated run costing 2x per batch.
  const double v = util::OverheadPerCall(/*isolated_cycles=*/100000, 50,
                                         /*direct_cycles=*/100000, 100,
                                         /*stages=*/1, /*workers=*/1);
  EXPECT_DOUBLE_EQ(v, 1000.0);  // 2000 - 1000 per batch
}

TEST(OverheadPerCall, ScalesByWorkersDividesByStages) {
  const double one = util::OverheadPerCall(120000, 100, 100000, 100, 1, 1);
  const double w4 = util::OverheadPerCall(120000, 100, 100000, 100, 1, 4);
  const double s4 = util::OverheadPerCall(120000, 100, 100000, 100, 4, 1);
  EXPECT_DOUBLE_EQ(w4, one * 4.0);
  EXPECT_DOUBLE_EQ(s4, one / 4.0);
}

TEST(OverheadPerCall, ZeroGuards) {
  EXPECT_DOUBLE_EQ(util::OverheadPerCall(1000, 0, 500, 10, 5, 1), 0.0);
  EXPECT_DOUBLE_EQ(util::OverheadPerCall(1000, 10, 500, 0, 5, 1), 0.0);
  EXPECT_DOUBLE_EQ(util::OverheadPerCall(1000, 10, 500, 10, 0, 1), 0.0);
}

}  // namespace
