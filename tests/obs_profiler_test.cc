// obs::Profiler — the sampling profiler behind GET /profile.
//
// What these tests pin down:
//   * a window over a CPU-burning registered thread produces folded samples
//     attributed to the thread's current phase/stage (not just idle);
//   * the folded output is format-valid (`frame(;frame)* count` plus '#'
//     comments) — the same grammar trace_lint --folded enforces in CI;
//   * window lifecycle: double-open refused, stop without open is inert,
//     back-to-back windows reset the tables;
//   * the Dekker drain handshake: StopWindowFolded racing live SIGPROF
//     traffic neither crashes nor tears (this test runs in the TSan matrix);
//   * context setters are no-ops on unregistered threads and scopes restore
//     their previous value on exit.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/profiler.h"

namespace {

// Parses folded text; fails the test on any malformed line. Returns the
// total tick count whose stack contains `needle` (empty = all stacks).
std::uint64_t FoldedTicks(const std::string& folded,
                          const std::string& needle) {
  std::uint64_t ticks = 0;
  std::istringstream in(folded);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << "line " << line_no << ": " << line;
    if (sp == std::string::npos) {
      continue;
    }
    const std::string stack = line.substr(0, sp);
    const std::string count = line.substr(sp + 1);
    EXPECT_FALSE(stack.empty()) << "line " << line_no;
    EXPECT_EQ(count.find_first_not_of("0123456789"), std::string::npos)
        << "line " << line_no << ": " << line;
    EXPECT_EQ(stack.find(' '), std::string::npos)
        << "space inside stack, line " << line_no << ": " << line;
    if (needle.empty() || stack.find(needle) != std::string::npos) {
      ticks += std::strtoull(count.c_str(), nullptr, 10);
    }
  }
  return ticks;
}

// Spins in execute phase with a stage + flow attached until told to stop.
// Registered under `name`; enters the profiler scopes fresh each lap so a
// window opened after launch still sees armed scopes.
void BurnLoop(const char* name, std::atomic<bool>* go,
              std::atomic<bool>* stop) {
  obs::Profiler::Global().RegisterThisThread(name);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  volatile std::uint64_t sink = 0;
  while (!stop->load(std::memory_order_acquire)) {
    obs::ScopedProfilerPhase exec(obs::ProfilerPhase::kExecute);
    obs::ScopedProfilerStage stage("burn_stage");
    obs::Profiler::SetFlow(0x2a);
    for (int i = 0; i < 20000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  obs::Profiler::Global().UnregisterThisThread();
}

TEST(Profiler, WindowAttributesBusyThreadToPhaseAndStage) {
  auto& prof = obs::Profiler::Global();
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::thread worker(BurnLoop, "ptest_worker", &go, &stop);

  std::string error;
  ASSERT_TRUE(prof.StartWindow(200, &error)) << error;
  EXPECT_TRUE(prof.window_open());

  // Double-open is refused while the first window runs.
  std::string error2;
  EXPECT_FALSE(prof.StartWindow(200, &error2));
  EXPECT_FALSE(error2.empty());

  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const std::string folded = prof.StopWindowFolded();
  stop.store(true, std::memory_order_release);
  worker.join();

  EXPECT_FALSE(prof.window_open());
  EXPECT_NE(folded.find("# linsys-profile"), std::string::npos) << folded;
  // The burner spent ~all its CPU in execute/burn_stage; a 400ms window at
  // 200us must catch it there at least once (CI boxes can be slow — demand
  // presence, not a rate).
  EXPECT_GT(FoldedTicks(folded, "ptest_worker;execute;burn_stage"), 0u)
      << folded;
  // The flow id set in the loop surfaces as an exemplar comment.
  EXPECT_NE(folded.find("flow=0x2a"), std::string::npos) << folded;
}

TEST(Profiler, StopWithoutOpenWindowIsInert) {
  const std::string folded = obs::Profiler::Global().StopWindowFolded();
  EXPECT_NE(folded.find("no open window"), std::string::npos);
}

TEST(Profiler, BackToBackWindowsResetTables) {
  auto& prof = obs::Profiler::Global();
  std::atomic<bool> go{true};
  std::atomic<bool> stop{false};
  std::thread worker(BurnLoop, "ptest_reset", &go, &stop);

  std::string error;
  ASSERT_TRUE(prof.StartWindow(200, &error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const std::uint64_t first =
      FoldedTicks(prof.StopWindowFolded(), "ptest_reset");

  // Second window: the burner is still running; counts must restart from
  // zero, not accumulate onto the first window's tally.
  ASSERT_TRUE(prof.StartWindow(200, &error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const std::string folded2 = prof.StopWindowFolded();
  stop.store(true, std::memory_order_release);
  worker.join();

  const std::uint64_t second = FoldedTicks(folded2, "ptest_reset");
  if (first > 4) {
    // Equal-length windows over the same steady burner: if the table had
    // leaked across windows, `second` would be >= first + first's ticks.
    EXPECT_LT(second, first * 4) << folded2;
  }
  EXPECT_GT(second, 0u) << folded2;
}

TEST(Profiler, DrainRacesLiveSamplingWithoutTearing) {
  // Hammer open/close while two threads burn CPU with scopes flapping —
  // the TSan job re-runs this; any handler/drain race is a report there,
  // and any protocol bug tends to show up here as a hang or a crash.
  auto& prof = obs::Profiler::Global();
  std::atomic<bool> go{true};
  std::atomic<bool> stop{false};
  std::thread a(BurnLoop, "ptest_race_a", &go, &stop);
  std::thread b(BurnLoop, "ptest_race_b", &go, &stop);

  for (int round = 0; round < 5; ++round) {
    std::string error;
    ASSERT_TRUE(prof.StartWindow(100, &error)) << error;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const std::string folded = prof.StopWindowFolded();
    // Header totals must cover every rendered sample line: attributed
    // (samples - overflow) >= sum of folded counts would catch a torn read.
    FoldedTicks(folded, "");  // format assertions only
  }
  stop.store(true, std::memory_order_release);
  a.join();
  b.join();
}

TEST(Profiler, UnregisteredThreadSettersAreNoOps) {
  // This thread never registered: scopes and setters must not touch
  // anything (g_prof_ctx is null), armed or not.
  std::atomic<bool> go{true};
  std::atomic<bool> stop{false};
  std::thread worker(BurnLoop, "ptest_bg", &go, &stop);
  std::string error;
  ASSERT_TRUE(obs::Profiler::Global().StartWindow(200, &error)) << error;
  {
    obs::ScopedProfilerPhase p(obs::ProfilerPhase::kExecute);
    obs::ScopedProfilerStage s("should_not_appear");
    obs::Profiler::SetFlow(0xdead);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string folded = obs::Profiler::Global().StopWindowFolded();
  stop.store(true, std::memory_order_release);
  worker.join();
  EXPECT_EQ(folded.find("should_not_appear"), std::string::npos) << folded;
}

TEST(Profiler, ScopesRestoreOnExit) {
  auto& prof = obs::Profiler::Global();
  prof.RegisterThisThread("ptest_scope");
  std::string error;
  ASSERT_TRUE(prof.StartWindow(1000, &error)) << error;
  {
    obs::ScopedProfilerPhase outer(obs::ProfilerPhase::kSteal);
    EXPECT_EQ(obs::internal::g_prof_ctx->phase.load(),
              static_cast<std::uint8_t>(obs::ProfilerPhase::kSteal));
    {
      obs::ScopedProfilerPhase inner(obs::ProfilerPhase::kExecute);
      obs::ScopedProfilerStage stage("inner_stage");
      EXPECT_EQ(obs::internal::g_prof_ctx->phase.load(),
                static_cast<std::uint8_t>(obs::ProfilerPhase::kExecute));
      EXPECT_STREQ(obs::internal::g_prof_ctx->stage.load(), "inner_stage");
    }
    // Inner scopes restored phase and stage on exit.
    EXPECT_EQ(obs::internal::g_prof_ctx->phase.load(),
              static_cast<std::uint8_t>(obs::ProfilerPhase::kSteal));
    EXPECT_EQ(obs::internal::g_prof_ctx->stage.load(), nullptr);
  }
  EXPECT_EQ(obs::internal::g_prof_ctx->phase.load(),
            static_cast<std::uint8_t>(obs::ProfilerPhase::kIdle));
  (void)prof.StopWindowFolded();
  prof.UnregisterThisThread();
}

}  // namespace
