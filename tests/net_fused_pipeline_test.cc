// Schedule IR + fusion-group tests: the fused schedule must be
// *semantically invisible* — same delivered bytes, same per-stage health,
// same checkpoint images as the interpreted schedule — while collapsing
// co-trusted stages into one protection domain (one rref call per group).
// Fault attribution stays per-member: a panic inside a fused group pins the
// member the domain last entered, and a crash-looping member is split out
// into its own quarantined singleton while its innocent neighbours re-form
// and keep serving. Also the two probation-clock regressions: downstream
// cool-downs ticking behind a dropping quarantined stage, and probation
// armed mid-quarantine not probe-storming from a zero cool-down base.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/net/operators/nat.h"
#include "src/net/operators/null_filter.h"
#include "src/net/operators/ttl.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/net/schedule.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace net {
namespace {

using util::FaultInjector;

PacketBatch MakeBatch(Mempool& pool, std::size_t n, std::uint8_t ttl = 64) {
  PacketBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    PacketBuf pkt = PacketBuf::Alloc(&pool, 64);
    BuildFrame(pkt,
               FiveTuple{0x0a000000u + static_cast<std::uint32_t>(i),
                         0xc0a80001u, static_cast<std::uint16_t>(1000 + i),
                         80, Ipv4Hdr::kProtoUdp},
               ttl);
    batch.Push(std::move(pkt));
  }
  return batch;
}

// Fault switch the test can flip between batches — lets a test decide which
// stage crashes when, which NullFilter's every-Nth counter cannot.
class ToggleFault : public Operator {
 public:
  explicit ToggleFault(std::shared_ptr<bool> fail) : fail_(std::move(fail)) {}
  PacketBatch Process(PacketBatch batch) override {
    if (*fail_) {
      util::Panic(util::PanicKind::kAssertFailed, "toggle fault");
    }
    return batch;
  }
  std::string_view name() const override { return "toggle"; }

 private:
  std::shared_ptr<bool> fail_;
};

// --- Schedule resolution -------------------------------------------------

TEST(ScheduleIR, InterpretedIsAllSingletons) {
  const auto groups = ResolveSchedule(PipelineSchedule::Interpreted(), 4);
  ASSERT_EQ(groups.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(groups[i], std::vector<std::size_t>{i});
  }
}

TEST(ScheduleIR, FuseCollapsesAdjacentRuns) {
  const auto groups =
      ResolveSchedule(PipelineSchedule().Fuse(0, 2).Fuse(3, 4), 6);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(groups[2], std::vector<std::size_t>{5});
}

TEST(ScheduleIR, IsolatePinWinsOverFuse) {
  // Fuse the whole chain, then pin stage 2: the run must split around it
  // regardless of directive order.
  const auto groups = ResolveSchedule(PipelineSchedule().Fuse(0, 4).Isolate(2), 5);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], std::vector<std::size_t>{2});
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{3, 4}));
}

TEST(ScheduleIR, AutoFusesUntilUntrustedMark) {
  // Stage 2 is marked untrusted (StageSpec::isolate): Auto fuses maximal
  // runs on both sides but never across it.
  const std::vector<bool> marks{false, false, true, false, false};
  const auto groups = ResolveSchedule(PipelineSchedule::Auto(), 5, marks);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], std::vector<std::size_t>{2});
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{3, 4}));
}

TEST(ScheduleIR, AutoCutsWhereGroupCostWouldExceedBudget) {
  // Measured per-stage costs seed the greedy scheduler: a fused fault
  // domain may hold at most max_group_cost worth of service time.
  const std::vector<double> hints{40, 40, 40, 100, 10};
  const auto groups =
      ResolveSchedule(PipelineSchedule::Auto(/*max_group_cost=*/90), 5, {},
                      hints);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], std::vector<std::size_t>{2});
  // Stage 3 alone exceeds the budget: it stands as its own fault domain and
  // nothing may join it — not even the cheap stage behind it.
  EXPECT_EQ(groups[2], std::vector<std::size_t>{3});
  EXPECT_EQ(groups[3], std::vector<std::size_t>{4});
}

TEST(ScheduleIR, CostHintsFoldPerStageTicksAcrossWorkerShards) {
  // PR 9 profiler drain: runtime member frames carry the @wN shard suffix;
  // hints pool every shard's ticks into the one spec-level stage.
  const std::string folded =
      "# linsys-profile period_us=250 threads=2 samples=90\n"
      "worker0;execute;ttl@w0 30\n"
      "worker1;execute;ttl@w1 20\n"
      "worker0;execute;nat@w0 25\n"
      "worker0;execute 10\n"
      "worker0;idle 5\n";
  const auto hints = StageCostHintsFromFolded(folded, {"ttl", "nat", "fw"});
  ASSERT_EQ(hints.size(), 3u);
  EXPECT_DOUBLE_EQ(hints[0], 50.0);
  EXPECT_DOUBLE_EQ(hints[1], 25.0);
  EXPECT_DOUBLE_EQ(hints[2], 0.0) << "never-sampled stages cost nothing";
}

// --- Fused vs interpreted differential (standalone pipeline) -------------

// Same operator chain, same traffic, two schedules: delivered frames must
// be byte-identical and per-stage health identical, while the fused
// pipeline pays exactly one domain crossing per batch.
TEST(FusedPipeline, FusedScheduleIsSemanticallyInvisible) {
  Mempool pool(256, 2048);
  auto build = [](IsolatedPipeline& pipe) {
    pipe.AddStage("ttl", [] { return std::make_unique<TtlDecrement>(); });
    pipe.AddStage("nat",
                  [] { return std::make_unique<NatRewrite>(0x05050505); });
    pipe.AddStage("tap", [] { return std::make_unique<NullFilter>(); });
  };
  sfi::DomainManager mgr_interp;
  IsolatedPipeline interp(&mgr_interp);
  build(interp);
  sfi::DomainManager mgr_fused;
  IsolatedPipeline fused(&mgr_fused);
  build(fused);
  fused.ApplySchedule(ResolveSchedule(PipelineSchedule().Fuse(0, 2), 3));
  ASSERT_EQ(fused.group_count(), 1u);
  ASSERT_EQ(interp.group_count(), 3u);

  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    auto a = interp.Run(MakeBatch(pool, 16));
    auto b = fused.Run(MakeBatch(pool, 16));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (std::size_t i = 0; i < a.value().size(); ++i) {
      const PacketBuf& pa = a.value()[i];
      const PacketBuf& pb = b.value()[i];
      ASSERT_EQ(pa.length(), pb.length());
      EXPECT_EQ(std::memcmp(pa.data(), pb.data(), pa.length()), 0)
          << "fused delivery must be byte-identical (round " << round
          << ", packet " << i << ")";
    }
  }
  for (std::size_t s = 0; s < 3; ++s) {
    const StageHealth hi = interp.health(s);
    const StageHealth hf = fused.health(s);
    EXPECT_EQ(hi.name, hf.name);
    EXPECT_EQ(hf.faults, hi.faults);
    EXPECT_EQ(hf.quarantined, hi.quarantined);
    EXPECT_EQ(hf.quarantine_drop_pkts, hi.quarantine_drop_pkts);
  }
  // The crossing economics: 3 rref calls per batch interpreted, 1 fused.
  EXPECT_EQ(mgr_interp.AggregateStats().calls_ok,
            static_cast<std::uint64_t>(kRounds) * 3);
  EXPECT_EQ(mgr_fused.AggregateStats().calls_ok,
            static_cast<std::uint64_t>(kRounds) * 1);
}

TEST(FusedPipeline, FaultInsideGroupAttributesToTheEnteredMember) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  pipe.AddStage("ok-a", [] { return std::make_unique<NullFilter>(); });
  pipe.AddStage("crashy",
                [] { return std::make_unique<NullFilter>(/*fault=*/1); });
  pipe.AddStage("ok-b", [] { return std::make_unique<NullFilter>(); });
  pipe.ApplySchedule(ResolveSchedule(PipelineSchedule().Fuse(0, 2), 3));

  auto result = pipe.Run(MakeBatch(pool, 8));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), sfi::CallError::kFault);
  EXPECT_EQ(pool.in_use(), 0u) << "in-flight batch reclaimed during unwind";
  EXPECT_EQ(pipe.health(0).faults, 0u);
  EXPECT_EQ(pipe.health(1).faults, 1u)
      << "the group's last-entered member owns the fault";
  EXPECT_EQ(pipe.health(2).faults, 0u);
}

TEST(FusedPipeline, CrashLoopingMemberSplitsOutOfItsGroup) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  pipe.AddStage("ok-a", [] { return std::make_unique<NullFilter>(); });
  pipe.AddStage("crashy",
                [] { return std::make_unique<NullFilter>(/*fault=*/1); },
                DegradePolicy::kPassthrough);
  pipe.AddStage("ok-b", [] { return std::make_unique<NullFilter>(); });
  pipe.ApplySchedule(ResolveSchedule(PipelineSchedule().Fuse(0, 2), 3));
  ASSERT_EQ(pipe.group_count(), 1u);

  // Crash-loop the middle member past its retry budget.
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(pipe.Run(MakeBatch(pool, 4)).ok());
    pipe.RecoverFailedStages(/*max_attempts=*/1);
  }
  // Quarantine must split the *member* out, not condemn the group: the
  // pipeline re-forms as {ok-a} {crashy} {ok-b}.
  EXPECT_EQ(pipe.QuarantinedStages(), 1u);
  EXPECT_TRUE(pipe.health(1).quarantined);
  EXPECT_FALSE(pipe.health(0).quarantined);
  EXPECT_FALSE(pipe.health(2).quarantined);
  const auto shape = pipe.GroupShape();
  ASSERT_EQ(shape.size(), 3u);
  EXPECT_EQ(shape[0], std::vector<std::size_t>{0});
  EXPECT_EQ(shape[1], std::vector<std::size_t>{1});
  EXPECT_EQ(shape[2], std::vector<std::size_t>{2});
  EXPECT_EQ(pipe.domain(0).state(), sfi::DomainState::kRunning);
  EXPECT_EQ(pipe.domain(1).state(), sfi::DomainState::kRetired);
  EXPECT_EQ(pipe.domain(2).state(), sfi::DomainState::kRunning);

  // The innocent neighbours keep serving (kPassthrough bypasses the corpse).
  auto out = pipe.Run(MakeBatch(pool, 8));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 8u);
  EXPECT_EQ(pipe.health(1).passthrough_batches, 1u);
}

// Checkpoint-image compatibility rule: images are per-operator and keyed by
// stage name, so a checkpoint captured under one schedule restores into any
// other — and an image naming an unknown stage is refused and counted, not
// a process abort (the old shape assert).
TEST(FusedPipeline, CheckpointsRestoreAcrossSchedulesByName) {
  Mempool pool(256, 2048);
  auto build = [](IsolatedPipeline& pipe) {
    pipe.AddStage("ttl", [] { return std::make_unique<TtlDecrement>(); });
    pipe.AddStage("nat",
                  [] { return std::make_unique<NatRewrite>(0x05050505); });
  };
  sfi::DomainManager mgr_a;
  IsolatedPipeline interp(&mgr_a);
  build(interp);
  ASSERT_TRUE(interp.Run(MakeBatch(pool, 8)).ok());
  const std::vector<StageImage> images = interp.CheckpointStages();
  ASSERT_EQ(images.size(), 2u);

  sfi::DomainManager mgr_b;
  IsolatedPipeline fused(&mgr_b);
  build(fused);
  fused.ApplySchedule(ResolveSchedule(PipelineSchedule().Fuse(0, 1), 2));
  EXPECT_EQ(fused.RestoreStages(images), 1u) << "nat state reloads";
  EXPECT_EQ(fused.restore_mismatches(), 0u);

  // Same flows through the restored fused pipeline: NAT must reuse the
  // interpreted run's port allocations (state really crossed schedules).
  auto a = interp.Run(MakeBatch(pool, 8));
  auto b = fused.Run(MakeBatch(pool, 8));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(NetToHost16(b.value()[i].udp()->src_port),
              NetToHost16(a.value()[i].udp()->src_port));
  }

  // A stale image from a renamed/removed stage: refused, counted, the rest
  // still restores — never LINSYS_ASSERT.
  std::vector<StageImage> stale = images;
  stale[1].name = "nat-v2";
  EXPECT_EQ(fused.RestoreStages(stale), 0u);
  EXPECT_EQ(fused.restore_mismatches(), 1u);
}

// --- Probation-clock regressions -----------------------------------------

// Bugfix: a quarantined stage behind a quarantined kDrop stage must still
// tick its cool-down — Run() previously returned at the first terminal
// policy action, so downstream clocks stalled and those stages never became
// probe-eligible.
TEST(FusedPipeline, ProbationClockTicksBehindADroppingQuarantinedStage) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  auto fail_a = std::make_shared<bool>(false);
  auto fail_b = std::make_shared<bool>(false);
  pipe.AddStage("front", [fail_a] { return std::make_unique<ToggleFault>(fail_a); },
                DegradePolicy::kDrop);
  pipe.AddStage("back", [fail_b] { return std::make_unique<ToggleFault>(fail_b); },
                DegradePolicy::kDrop);
  pipe.SetProbation(/*cooldown_batches=*/2);

  auto crash_loop = [&](std::shared_ptr<bool> toggle) {
    *toggle = true;
    for (int i = 0; i < 2; ++i) {
      ASSERT_FALSE(pipe.Run(MakeBatch(pool, 4)).ok());
      pipe.RecoverFailedStages(/*max_attempts=*/1);
    }
    *toggle = false;
  };
  // Quarantine the *downstream* stage first (front still healthy), then the
  // front one — the classic shadowing arrangement.
  crash_loop(fail_b);
  ASSERT_TRUE(pipe.health(1).quarantined);
  crash_loop(fail_a);
  ASSERT_TRUE(pipe.health(0).quarantined);

  // Every dispatched batch now dies at the quarantined kDrop front stage;
  // the back stage's cool-down must keep counting down regardless.
  for (int i = 0; i < 3; ++i) {
    auto out = pipe.Run(MakeBatch(pool, 4));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value().size(), 0u) << "kDrop eats the batch";
  }
  EXPECT_EQ(pipe.ProbeQuarantined(), 2u)
      << "both stages' clocks elapsed — the shadowed one must probe too";
  EXPECT_TRUE(pipe.health(0).probing);
  EXPECT_TRUE(pipe.health(1).probing);
}

// Bugfix: probation armed *after* a stage was quarantined — the stage's
// cool-down base is still 0, so it would probe on the very next supervisor
// pass, and a failed probe doubling 0 stays 0 (probe storm). Arming must
// seed the clock with the configured initial, and re-quarantine doubling is
// clamped to at least that initial.
TEST(FusedPipeline, ProbationArmedMidQuarantineDoesNotProbeStorm) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  auto fail = std::make_shared<bool>(true);
  pipe.AddStage("crashy", [fail] { return std::make_unique<ToggleFault>(fail); });

  // Quarantine with probation disabled: the cool-down base stays 0.
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(pipe.Run(MakeBatch(pool, 4)).ok());
    pipe.RecoverFailedStages(/*max_attempts=*/1);
  }
  ASSERT_TRUE(pipe.health(0).quarantined);
  ASSERT_EQ(pipe.health(0).cooldown, 0u);

  // Arm probation mid-quarantine: the stage must wait a full initial
  // cool-down, not probe on the next pass.
  pipe.SetProbation(/*cooldown_batches=*/3);
  EXPECT_EQ(pipe.ProbeQuarantined(), 0u)
      << "zero-based clock must be re-seeded, not instantly eligible";
  EXPECT_EQ(pipe.health(0).cooldown, 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipe.Run(MakeBatch(pool, 4)).ok());  // kDrop: empty batches
  }
  EXPECT_EQ(pipe.ProbeQuarantined(), 1u);

  // Failed probe: the cool-down doubles from a *non-zero* base and can
  // never collapse below the configured initial again.
  ASSERT_FALSE(pipe.Run(MakeBatch(pool, 4)).ok());
  EXPECT_TRUE(pipe.health(0).quarantined);
  EXPECT_EQ(pipe.health(0).requarantines, 1u);
  EXPECT_GE(pipe.health(0).cooldown, 3u);
  EXPECT_EQ(pipe.ProbeQuarantined(), 0u) << "no immediate re-probe";
}

// --- Runtime differential (the TSan case) --------------------------------

class FusedRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

bool DrainTo(Runtime& rt, std::uint64_t dispatched) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    const RuntimeStats s = rt.Stats();
    if (s.totals.packets + s.totals.drops + s.steer_dropped_items >=
        dispatched) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

std::vector<StageSpec> Chain3(DegradePolicy middle_degrade,
                              std::uint64_t middle_fault_every_n) {
  std::vector<StageSpec> spec;
  spec.push_back({"ttl", [](std::size_t) {
                    return std::make_unique<TtlDecrement>();
                  }});
  spec.push_back({"mid",
                  [middle_fault_every_n](std::size_t) {
                    return std::make_unique<NullFilter>(middle_fault_every_n);
                  },
                  middle_degrade});
  spec.push_back({"nat", [](std::size_t) {
                    return std::make_unique<NatRewrite>(0x0a000001);
                  }});
  return spec;
}

// Same seeded traffic through an interpreted and a fused runtime: the
// exactly-once ledger must hold in both, and with no faults the delivered
// packet counts are identical.
TEST_F(FusedRuntimeTest, FusedRuntimeConservesLikeInterpreted) {
  std::uint64_t delivered[2] = {0, 0};
  for (int fused = 0; fused < 2; ++fused) {
    RuntimeConfig cfg;
    cfg.workers = 2;
    if (fused) {
      cfg.schedule.Fuse(0, 2);
    }
    Runtime rt(cfg, Chain3(DegradePolicy::kDrop, 0));
    rt.Start();
    FlowSampler sampler(64, 0.0, 29);
    FlowFeeder feeder(&sampler);
    std::uint64_t dispatched = 0;
    for (int i = 0; i < 40; ++i) {
      rt.Dispatch(feeder.Next(16));
      dispatched += 16;
    }
    ASSERT_TRUE(DrainTo(rt, dispatched));
    rt.Shutdown();
    const RuntimeStats s = rt.Stats();
    EXPECT_EQ(s.totals.packets + s.totals.drops + s.steer_dropped_items,
              dispatched)
        << s.Summary();
    EXPECT_EQ(s.totals.faults, 0u);
    delivered[fused] = s.totals.packets;
  }
  EXPECT_EQ(delivered[0], delivered[1])
      << "fault-free schedules must deliver identically";
}

// A deterministic crasher fused between two healthy stages: the supervisor
// must quarantine only that member on every worker replica — its group
// neighbours split out and keep the shard serving — and conservation holds
// across the quarantine under concurrent supervision (the TSan half).
TEST_F(FusedRuntimeTest, FaultInFusedGroupQuarantinesOnlyTheMember) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.schedule.Fuse(0, 2);
  cfg.supervision.max_recovery_attempts = 2;
  cfg.supervision.backoff_initial_us = 50;
  cfg.supervision.backoff_max_us = 200;
  cfg.supervision.watchdog_period_ms = 2;
  Runtime rt(cfg, Chain3(DegradePolicy::kPassthrough, /*fault_every_n=*/1));
  rt.Start();

  FlowSampler sampler(64, 0.0, 31);
  FlowFeeder feeder(&sampler);
  std::uint64_t dispatched = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(4);
  bool quarantined_everywhere = false;
  while (std::chrono::steady_clock::now() < deadline) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
    const RuntimeStats s = rt.Stats();
    if (s.stages[1].quarantined_replicas == cfg.workers &&
        s.totals.packets > 0) {
      quarantined_everywhere = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(quarantined_everywhere)
      << "crashy member never quarantined on all replicas: "
      << rt.Stats().Summary();
  ASSERT_TRUE(DrainTo(rt, dispatched));
  rt.Shutdown();

  const RuntimeStats s = rt.Stats();
  EXPECT_EQ(s.stages[0].quarantined_replicas, 0u)
      << "innocent group member condemned";
  EXPECT_EQ(s.stages[2].quarantined_replicas, 0u)
      << "innocent group member condemned";
  EXPECT_EQ(s.stages[1].quarantined_replicas, cfg.workers);
  EXPECT_GT(s.stages[1].faults, 0u);
  EXPECT_EQ(s.stages[0].faults + s.stages[2].faults, 0u)
      << "faults must attribute to the entered member only";
  EXPECT_GT(s.totals.packets, 0u)
      << "split-out neighbours must keep the shard serving (kPassthrough)";
  EXPECT_EQ(s.totals.packets + s.totals.drops + s.steer_dropped_items,
            dispatched)
      << s.Summary();
}

// Live checkpoint + failover with a fused schedule: per-operator images are
// captured through the group rref, restored by name into the fused replica,
// and the exactly-once ledger holds across the failover.
TEST_F(FusedRuntimeTest, FusedCheckpointFailoverConserves) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.schedule.Fuse(0, 2);
  cfg.ckpt.enabled = true;
  cfg.supervision.watchdog_period_ms = 2;
  Runtime rt(cfg, Chain3(DegradePolicy::kDrop, 0));
  rt.Start();

  FlowSampler sampler(48, 0.0, 37);
  FlowFeeder feeder(&sampler);
  std::uint64_t dispatched = 0;
  for (int i = 0; i < 20; ++i) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  ASSERT_TRUE(rt.CheckpointLive());
  const RuntimeCkptImage image = rt.CheckpointImageCopy();
  ASSERT_EQ(image.workers.size(), 2u);
  // Per-operator image shape regardless of fusion: 3 images, nat present.
  ASSERT_EQ(image.workers[0].stages.size(), 3u);
  EXPECT_EQ(image.workers[0].stages[2].present, 1u);
  EXPECT_EQ(image.workers[0].stages[0].present, 0u) << "ttl is stateless";

  for (int i = 0; i < 20; ++i) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  ASSERT_TRUE(rt.FailoverWorker(1));
  for (int i = 0; i < 10; ++i) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  rt.Shutdown();

  const RuntimeStats s = rt.Stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.ckpt_restore_mismatches, 0u)
      << "same schedule, same names: nothing to refuse";
  EXPECT_EQ(s.totals.packets + s.totals.drops + s.steer_dropped_items,
            dispatched)
      << s.Summary();
}

}  // namespace
}  // namespace net
