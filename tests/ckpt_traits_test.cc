// Inductive checkpoint derivation: round-trip identity for every supported
// shape, and the Rc/Arc alias semantics in all three dedup modes.
#include "src/ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/lin/arc.h"
#include "src/lin/mutex.h"
#include "src/lin/own.h"
#include "src/lin/rc.h"
#include "src/util/panic.h"

namespace ckpt {
namespace {

template <Checkpointable T>
T RoundTrip(const T& value, DedupMode mode = DedupMode::kLinearMark) {
  return Restore<T>(Checkpoint(value, mode));
}

TEST(Traits, Scalars) {
  EXPECT_EQ(RoundTrip(42), 42);
  EXPECT_EQ(RoundTrip(-7L), -7L);
  EXPECT_EQ(RoundTrip(true), true);
  EXPECT_EQ(RoundTrip(3.25), 3.25);
  EXPECT_EQ(RoundTrip<std::uint8_t>(255), 255);
}

TEST(Traits, Strings) {
  EXPECT_EQ(RoundTrip(std::string("")), "");
  EXPECT_EQ(RoundTrip(std::string("hello world")), "hello world");
  std::string binary("\x00\x01\xff", 3);
  EXPECT_EQ(RoundTrip(binary), binary);
}

TEST(Traits, Vectors) {
  EXPECT_EQ(RoundTrip(std::vector<int>{}), std::vector<int>{});
  EXPECT_EQ(RoundTrip(std::vector<int>{1, 2, 3}),
            (std::vector<int>{1, 2, 3}));
  std::vector<std::vector<std::string>> nested{{"a", "b"}, {}, {"c"}};
  EXPECT_EQ(RoundTrip(nested), nested);
}

TEST(Traits, UniquePtr) {
  auto restored = RoundTrip(std::make_unique<int>(9));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(*restored, 9);
  EXPECT_EQ(RoundTrip(std::unique_ptr<int>()), nullptr);
}

TEST(Traits, LinOwn) {
  auto restored = RoundTrip(lin::Make<std::string>("owned"));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored.Borrow(), "owned");
  lin::Own<std::string> empty;
  EXPECT_FALSE(RoundTrip(std::move(empty)).has_value());
}

struct Inner {
  int a = 0;
  std::string name;
  LINSYS_CHECKPOINT_FIELDS(a, name)
  bool operator==(const Inner&) const = default;
};

struct Outer {
  Inner inner;
  std::vector<int> values;
  bool flag = false;
  LINSYS_CHECKPOINT_FIELDS(inner, values, flag)
  bool operator==(const Outer&) const = default;
};

TEST(Traits, DerivedStructsNest) {
  Outer o{Inner{5, "x"}, {1, 2}, true};
  EXPECT_EQ(RoundTrip(o), o);
}

TEST(Traits, MutexLocksAndRoundTrips) {
  lin::Mutex<std::vector<int>> m(std::vector<int>{1, 2, 3});
  lin::Mutex<std::vector<int>> restored =
      RoundTrip<lin::Mutex<std::vector<int>>>(std::move(m));
  EXPECT_EQ(*restored.Lock(), (std::vector<int>{1, 2, 3}));
}

// ---- Rc alias semantics -----------------------------------------------------

struct Pair {
  lin::Rc<std::string> left;
  lin::Rc<std::string> right;
  LINSYS_CHECKPOINT_FIELDS(left, right)
};

TEST(RcCkpt, AliasedPairSerializedOnce) {
  auto shared = lin::Rc<std::string>::Make("shared-rule");
  Pair p{shared, shared};

  CheckpointStats stats;
  Snapshot snap = Checkpoint(p, DedupMode::kLinearMark, &stats);
  EXPECT_EQ(stats.payload_copies, 1u) << "one payload for two aliases";
  EXPECT_EQ(stats.back_refs, 1u);

  Pair restored = Restore<Pair>(snap);
  EXPECT_EQ(*restored.left, "shared-rule");
  EXPECT_TRUE(restored.left.SameObject(restored.right))
      << "sharing must survive the round trip";
  EXPECT_FALSE(restored.left.SameObject(p.left))
      << "but the restored object is a fresh copy";
}

TEST(RcCkpt, AddressSetModeSameResultDifferentMechanism) {
  auto shared = lin::Rc<std::string>::Make("rule");
  Pair p{shared, shared};
  CheckpointStats stats;
  Snapshot snap = Checkpoint(p, DedupMode::kAddressSet, &stats);
  EXPECT_EQ(stats.payload_copies, 1u);
  EXPECT_EQ(stats.back_refs, 1u);
  Pair restored = Restore<Pair>(snap);
  EXPECT_TRUE(restored.left.SameObject(restored.right));
}

TEST(RcCkpt, NaiveModeDuplicatesAndLosesSharing) {
  auto shared = lin::Rc<std::string>::Make("rule");
  Pair p{shared, shared};
  CheckpointStats stats;
  Snapshot snap = Checkpoint(p, DedupMode::kNone, &stats);
  EXPECT_EQ(stats.payload_copies, 2u) << "Figure 3b: one copy per alias";
  EXPECT_EQ(stats.back_refs, 0u);
  Pair restored = Restore<Pair>(snap);
  EXPECT_EQ(*restored.left, "rule");
  EXPECT_EQ(*restored.right, "rule");
  EXPECT_FALSE(restored.left.SameObject(restored.right))
      << "naive restore silently splits shared state";
}

TEST(RcCkpt, DistinctObjectsStayDistinct) {
  Pair p{lin::Rc<std::string>::Make("a"), lin::Rc<std::string>::Make("b")};
  Pair restored = RoundTrip(p);
  EXPECT_EQ(*restored.left, "a");
  EXPECT_EQ(*restored.right, "b");
  EXPECT_FALSE(restored.left.SameObject(restored.right));
}

TEST(RcCkpt, EmptyHandleRoundTrips) {
  Pair p{lin::Rc<std::string>(), lin::Rc<std::string>::Make("only")};
  Pair restored = RoundTrip(p);
  EXPECT_FALSE(restored.left.has_value());
  ASSERT_TRUE(restored.right.has_value());
}

TEST(RcCkpt, ConsecutiveEpochsNeedNoClearing) {
  auto shared = lin::Rc<std::string>::Make("r");
  Pair p{shared, shared};
  for (int round = 0; round < 5; ++round) {
    CheckpointStats stats;
    (void)Checkpoint(p, DedupMode::kLinearMark, &stats);
    EXPECT_EQ(stats.payload_copies, 1u) << "round " << round
        << ": stale marks from the previous epoch must read as unvisited";
  }
}

TEST(RcCkpt, VectorOfAliases) {
  auto hot = lin::Rc<std::string>::Make("hot");
  std::vector<lin::Rc<std::string>> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(hot);
  }
  v.push_back(lin::Rc<std::string>::Make("cold"));

  CheckpointStats stats;
  Snapshot snap = Checkpoint(v, DedupMode::kLinearMark, &stats);
  EXPECT_EQ(stats.payload_copies, 2u);
  EXPECT_EQ(stats.back_refs, 9u);

  auto restored = Restore<std::vector<lin::Rc<std::string>>>(snap);
  ASSERT_EQ(restored.size(), 11u);
  for (int i = 1; i < 10; ++i) {
    EXPECT_TRUE(restored[0].SameObject(restored[i]));
  }
  EXPECT_FALSE(restored[0].SameObject(restored[10]));
}

TEST(ArcCkpt, SharedStateWithMutexRoundTrips) {
  using Shared = lin::Arc<lin::Mutex<std::vector<int>>>;
  auto state = Shared::Make(std::vector<int>{1, 2});
  struct Holder {
    Shared a;
    Shared b;
    LINSYS_CHECKPOINT_FIELDS(a, b)
  };
  Holder h{state, state};
  Snapshot snap = Checkpoint(h);
  Holder restored = Restore<Holder>(snap);
  EXPECT_TRUE(restored.a.SameObject(restored.b));
  EXPECT_EQ(*restored.a.SharedMut().Lock(), (std::vector<int>{1, 2}));
}

TEST(Snapshot, SnapshotIsImmutableCopy) {
  auto rc = lin::Rc<std::string>::Make("before");
  Pair p{rc, rc};
  Snapshot snap = Checkpoint(p);
  // Replacing the live object after the checkpoint must not affect restore.
  p = Pair{lin::Rc<std::string>::Make("after"),
           lin::Rc<std::string>::Make("after")};
  Pair restored = Restore<Pair>(snap);
  EXPECT_EQ(*restored.left, "before");
}

TEST(Snapshot, TruncatedSnapshotPanics) {
  Snapshot snap = Checkpoint(std::vector<int>{1, 2, 3});
  snap.bytes.resize(snap.bytes.size() / 2);
  EXPECT_THROW((void)Restore<std::vector<int>>(snap), util::PanicError);
}

TEST(Snapshot, TrailingBytesPanics) {
  Snapshot snap = Checkpoint(7);
  snap.bytes.push_back(0xff);
  EXPECT_THROW((void)Restore<int>(snap), util::PanicError);
}

TEST(Snapshot, SizeReflectsDedup) {
  auto big = lin::Rc<std::string>::Make(std::string(1000, 'x'));
  std::vector<lin::Rc<std::string>> v(8, big);
  Snapshot linear = Checkpoint(v, DedupMode::kLinearMark);
  Snapshot naive = Checkpoint(v, DedupMode::kNone);
  EXPECT_LT(linear.size_bytes() * 4, naive.size_bytes())
      << "naive snapshots blow up with the alias count";
}

}  // namespace
}  // namespace ckpt
