// The lin::Own runtime is our stand-in for Rust's static borrow checker
// (DESIGN.md §2), so these tests are transcriptions of borrow-checker rules:
// each one is a program Rust would accept (must work) or reject (must panic
// deterministically).
#include "src/lin/own.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/panic.h"

namespace lin {
namespace {

using util::PanicError;
using util::PanicKind;

PanicKind KindOf(const std::function<void()>& f) {
  try {
    f();
  } catch (const PanicError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a panic";
  return PanicKind::kExplicit;
}

TEST(Own, MakeAndAccess) {
  auto v = Own<std::vector<int>>::Make(std::initializer_list<int>{1, 2, 3});
  EXPECT_EQ(v->size(), 3u);
  (*v).push_back(4);
  EXPECT_EQ(v->back(), 4);
}

TEST(Own, MoveTransfersOwnership) {
  auto a = Make<std::string>("hello");
  Own<std::string> b = std::move(a);
  EXPECT_FALSE(a.has_value());
  EXPECT_TRUE(b.has_value());
  EXPECT_EQ(*b, "hello");
}

// The paper's §2 listing: take(v1); println!(v1) is an error.
TEST(Own, UseAfterMovePanics) {
  auto v1 = Make<std::vector<int>>(std::initializer_list<int>{1, 2, 3});
  auto take = [](Own<std::vector<int>> v) { return v->size(); };
  EXPECT_EQ(take(std::move(v1)), 3u);
  EXPECT_EQ(KindOf([&] { (void)v1->size(); }), PanicKind::kUseAfterMove);
  EXPECT_EQ(KindOf([&] { (void)*v1; }), PanicKind::kUseAfterMove);
  EXPECT_EQ(KindOf([&] { (void)v1.Take(); }), PanicKind::kUseAfterMove);
}

// borrow(&v2); println!(v2) is fine.
TEST(Own, BorrowPreservesBinding) {
  auto v2 = Make<std::vector<int>>(std::initializer_list<int>{1, 2, 3});
  auto borrow = [](Ref<std::vector<int>> v) { return v->size(); };
  EXPECT_EQ(borrow(v2.Borrow()), 3u);
  EXPECT_EQ(v2->size(), 3u);  // still usable
}

TEST(Own, MultipleSharedBorrowsCoexist) {
  auto v = Make<int>(10);
  Ref<int> r1 = v.Borrow();
  Ref<int> r2 = v.Borrow();
  Ref<int> r3 = r1;  // copyable, like &T
  EXPECT_EQ(*r1 + *r2 + *r3, 30);
  // Shared *reads* through the owner stay legal, but only via the const
  // accessor — a non-const deref counts as a write for borrow purposes.
  EXPECT_EQ(*std::as_const(v), 10);
}

TEST(Own, MutBorrowGivesExclusiveAccess) {
  auto v = Make<int>(1);
  {
    Mut<int> m = v.BorrowMut();
    *m = 42;
  }
  EXPECT_EQ(*v, 42);
}

#if LINSYS_CHECKED_OWNERSHIP

TEST(OwnChecked, SharedThenMutBorrowPanics) {
  auto v = Make<int>(1);
  Ref<int> r = v.Borrow();
  EXPECT_EQ(KindOf([&] { (void)v.BorrowMut(); }),
            PanicKind::kBorrowConflict);
}

TEST(OwnChecked, TwoMutBorrowsPanic) {
  auto v = Make<int>(1);
  Mut<int> m = v.BorrowMut();
  EXPECT_EQ(KindOf([&] { (void)v.BorrowMut(); }),
            PanicKind::kBorrowConflict);
}

TEST(OwnChecked, MutBorrowThenSharedBorrowPanics) {
  auto v = Make<int>(1);
  Mut<int> m = v.BorrowMut();
  EXPECT_EQ(KindOf([&] { (void)v.Borrow(); }), PanicKind::kBorrowConflict);
}

TEST(OwnChecked, OwnerWriteWhileSharedBorrowPanics) {
  auto v = Make<int>(1);
  Ref<int> r = v.Borrow();
  EXPECT_EQ(KindOf([&] { *v = 2; }), PanicKind::kBorrowConflict);
}

TEST(OwnChecked, OwnerReadWhileMutBorrowPanics) {
  auto v = Make<int>(1);
  Mut<int> m = v.BorrowMut();
  const auto& cv = v;
  EXPECT_EQ(KindOf([&] { (void)*cv; }), PanicKind::kBorrowConflict);
}

TEST(OwnChecked, TakeWhileBorrowedPanics) {
  auto v = Make<int>(1);
  Ref<int> r = v.Borrow();
  EXPECT_EQ(KindOf([&] { (void)v.Take(); }), PanicKind::kBorrowConflict);
}

TEST(OwnChecked, DropWhileBorrowedPanics) {
  // Raw new/delete: unique_ptr::reset is noexcept, which would turn the
  // detection panic into std::terminate before the test could observe it.
  auto* v = new Own<int>(Make<int>(1));
  Ref<int> r = v->Borrow();
  EXPECT_EQ(KindOf([&] { delete v; }), PanicKind::kBorrowConflict);
}

TEST(OwnChecked, DropWhileBorrowedDuringUnwindLeaksInsteadOfTerminating) {
  // If a panic is already unwinding, a borrowed Own destroyed by the unwind
  // must NOT throw again (that would be std::terminate). The runtime leaks
  // the box instead — the domain recovery path reclaims the heap anyway.
  struct DeleteOnUnwind {
    Own<int>* owner;
    ~DeleteOnUnwind() { delete owner; }  // runs mid-unwind
  };
  try {
    auto* v = new Own<int>(Make<int>(1));
    Ref<int> r = v->Borrow();
    DeleteOnUnwind guard{v};
    util::Panic("unwinding with a borrowed Own in scope");
  } catch (const util::PanicError& e) {
    EXPECT_STREQ(e.what(), "unwinding with a borrowed Own in scope");
  }
  SUCCEED() << "no std::terminate during double-fault unwinding";
}

TEST(OwnChecked, BorrowEndsWhenGuardDies) {
  auto v = Make<int>(1);
  {
    Ref<int> r = v.Borrow();
  }
  Mut<int> m = v.BorrowMut();  // no conflict: previous borrow ended
  *m = 5;
}

TEST(OwnChecked, MovedGuardReleasesOnce) {
  auto v = Make<int>(1);
  {
    Ref<int> r1 = v.Borrow();
    Ref<int> r2 = std::move(r1);
    EXPECT_EQ(*r2, 1);
  }
  (void)v.BorrowMut();  // all borrows gone exactly once
}

#endif  // LINSYS_CHECKED_OWNERSHIP

// Borrows survive moves of the owning handle because the box is stable.
TEST(Own, BorrowSurvivesOwnerMove) {
  auto v = Make<std::string>("stable");
  Own<std::string> moved;  // declared first so it outlives the borrow below
  Ref<std::string> r = v.Borrow();
  moved = std::move(v);  // the handle moves; the heap box does not
  EXPECT_EQ(*r, "stable");
  EXPECT_EQ(*std::as_const(moved), "stable");
}

TEST(Own, TakeMovesValueOut) {
  auto v = Make<std::string>("payload");
  std::string s = v.Take();
  EXPECT_EQ(s, "payload");
  EXPECT_FALSE(v.has_value());
}

TEST(Own, DropDestroysEagerly) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  auto v = Make<Counted>();
  EXPECT_EQ(live, 1);
  v.Drop();
  EXPECT_EQ(live, 0);
  EXPECT_FALSE(v.has_value());
}

TEST(Own, DefaultConstructedIsConsumed) {
  Own<int> v;
  EXPECT_FALSE(v.has_value());
  EXPECT_THROW((void)*v, PanicError);
}

TEST(Own, MoveAssignReleasesPrevious) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  auto a = Make<Counted>();
  auto b = Make<Counted>();
  EXPECT_EQ(live, 2);
  a = std::move(b);
  EXPECT_EQ(live, 1);
}

TEST(Own, StoredInContainers) {
  std::vector<Own<int>> owners;
  for (int i = 0; i < 100; ++i) {
    owners.push_back(Make<int>(i));
  }
  int sum = 0;
  for (const auto& o : owners) {
    sum += *o;
  }
  EXPECT_EQ(sum, 4950);
}

}  // namespace
}  // namespace lin
