// IFC abstract interpretation (§4): label propagation, implicit flows via
// the pc label, channel bounds, assertions, loops, and the two analysis
// modes — including the paper's buffer listing and the secure data store
// with the seeded access-control bug.
#include "src/ifc/an/abstract.h"

#include <gtest/gtest.h>

#include "src/ifc/checker.h"

namespace ifc {
namespace {

using ril::Phase;

AnalysisResult Analyze(std::string_view src,
                       Mode mode = Mode::kWholeProgram) {
  AnalysisResult result = AnalyzeSource(src, mode);
  EXPECT_TRUE(result.parse_ok) << result.diags.ToString();
  EXPECT_TRUE(result.type_ok) << result.diags.ToString();
  return result;
}

// ---- The paper's §4 buffer listing -------------------------------------

constexpr std::string_view kPaperBufferListing = R"(
sink terminal: {};
struct Buffer { data: vec }

fn append_buf(buf: &mut Buffer, v: vec) {
  append(&mut buf.data, v);
}

fn main() {
  let mut buf = Buffer { data: vec![] };
  #[label()]
  let nonsec = vec![1, 2, 3];
  #[label(secret)]
  let sec = vec![4, 5, 6];
  append_buf(&mut buf, nonsec);
  append_buf(&mut buf, sec);       // buf now contains secret data
  emit(terminal, buf.data);        // ERROR: leaks secret data
  emit(terminal, nonsec);          // ERROR (ownership): nonsec was moved
}
)";

TEST(IfcPaper, BufferListingLine16LeakDetected) {
  // Run without the ownership phase to reach IFC for line 17 analysis; the
  // full pipeline stops at ownership. First: full pipeline fails at
  // ownership (the line-17 exploit).
  AnalysisResult full = Analyze(kPaperBufferListing);
  EXPECT_FALSE(full.ownership_ok);
  EXPECT_TRUE(full.diags.Contains(Phase::kOwnership,
                                  "use of moved value 'nonsec'"))
      << full.diags.ToString();

  // Second: the IFC phase alone flags the line-16 leak. (Strip line 18 so
  // ownership passes.)
  std::string no_line17(kPaperBufferListing);
  no_line17.replace(no_line17.find("emit(terminal, nonsec);"),
                    std::string("emit(terminal, nonsec);").size(), "");
  AnalysisResult ifc_only = Analyze(no_line17);
  EXPECT_TRUE(ifc_only.ownership_ok) << ifc_only.diags.ToString();
  EXPECT_FALSE(ifc_only.ifc_ok);
  EXPECT_TRUE(ifc_only.diags.Contains(Phase::kIfc, "leaks data labeled"))
      << ifc_only.diags.ToString();
  EXPECT_TRUE(ifc_only.diags.Contains(Phase::kIfc, "secret"));
}

TEST(IfcPaper, NonSecretOnlyBufferIsClean) {
  AnalysisResult r = Analyze(R"(
    sink terminal: {};
    struct Buffer { data: vec }
    fn append_buf(buf: &mut Buffer, v: vec) {
      append(&mut buf.data, v);
    }
    fn main() {
      let mut buf = Buffer { data: vec![] };
      #[label()]
      let nonsec = vec![1, 2, 3];
      append_buf(&mut buf, nonsec);
      emit(terminal, buf.data);
    }
  )");
  EXPECT_TRUE(r.AllOk()) << r.diags.ToString();
}

// ---- Core label propagation ---------------------------------------------

TEST(Ifc, ExplicitFlowThroughArithmetic) {
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 42;
      let derived = s * 2 + 1;
      emit(stdout, derived);
    }
  )");
  EXPECT_FALSE(r.ifc_ok);
  EXPECT_TRUE(r.diags.Contains(Phase::kIfc, "secret"));
}

TEST(Ifc, ImplicitFlowThroughBranch) {
  // The classic: no secret *data* reaches the sink, but the branch on the
  // secret taints everything written under it (the pc label).
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 1;
      let mut leak = 0;
      if s == 1 { leak = 1; } else { leak = 0; }
      emit(stdout, leak);
    }
  )");
  EXPECT_FALSE(r.ifc_ok) << "pc label must catch the implicit flow";
  EXPECT_TRUE(r.diags.Contains(Phase::kIfc, "secret"));
}

TEST(Ifc, ImplicitFlowThroughLoopCondition) {
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 3;
      let mut count = 0;
      let mut i = 0;
      while i < s {
        count = count + 1;
        i = i + 1;
      }
      emit(stdout, count);
    }
  )");
  EXPECT_FALSE(r.ifc_ok);
}

TEST(Ifc, PcDoesNotStickAfterBranch) {
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 1;
      let mut x = 0;
      if s == 1 { x = 1; }
      let y = 7;        // written after the branch, public pc
      emit(stdout, y);
    }
  )");
  EXPECT_TRUE(r.ifc_ok)
      << "only writes under the secret branch are tainted: "
      << r.diags.ToString();
}

TEST(Ifc, VecOperationsPropagate) {
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 9;
      let mut v = vec![1, 2];
      push(&mut v, s);
      emit(stdout, v);
    }
  )");
  EXPECT_FALSE(r.ifc_ok);

  AnalysisResult idx = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 0;
      let v = vec![10, 20];
      emit(stdout, v[s]);
    }
  )");
  EXPECT_FALSE(idx.ifc_ok) << "the index itself is secret-dependent";
}

TEST(Ifc, PerFieldStructPrecision) {
  // One secret field must not taint the whole struct's other fields.
  AnalysisResult r = Analyze(R"(
    struct Mixed { pub_data: vec, sec_data: vec }
    fn main() {
      #[label(secret)]
      let s = vec![1];
      let p = vec![2];
      let m = Mixed { pub_data: p, sec_data: s };
      emit(stdout, m.pub_data);
    }
  )");
  EXPECT_TRUE(r.ifc_ok) << "field-sensitive labels: " << r.diags.ToString();

  AnalysisResult leak = Analyze(R"(
    struct Mixed { pub_data: vec, sec_data: vec }
    fn main() {
      #[label(secret)]
      let s = vec![1];
      let p = vec![2];
      let m = Mixed { pub_data: p, sec_data: s };
      emit(stdout, m.sec_data);
    }
  )");
  EXPECT_FALSE(leak.ifc_ok);
}

TEST(Ifc, WholeStructReadJoinsFields) {
  AnalysisResult r = Analyze(R"(
    struct Mixed { pub_data: vec, sec_data: vec }
    fn show(m: Mixed) { emit(stdout, m.sec_data); }
    fn main() {
      #[label(secret)]
      let s = vec![1];
      let m = Mixed { pub_data: vec![2], sec_data: s };
      show(m);
    }
  )");
  EXPECT_FALSE(r.ifc_ok);
}

TEST(Ifc, SinkBoundsArePartialOrder) {
  AnalysisResult r = Analyze(R"(
    sink alice_out: {alice};
    sink admin_out: {alice, bob};
    fn main() {
      #[label(alice)]
      let a = vec![1];
      #[label(bob)]
      let b = vec![2];
      emit(alice_out, a);   // ok: {alice} <= {alice}
      emit(admin_out, a);   // ok: {alice} <= {alice,bob}
      emit(admin_out, b);   // ok
      emit(alice_out, b);   // ERROR: {bob} not<= {alice}
    }
  )");
  EXPECT_FALSE(r.ifc_ok);
  // Exactly one violation.
  std::size_t ifc_errors = 0;
  for (const auto& d : r.diags.all()) {
    ifc_errors += d.phase == Phase::kIfc;
  }
  EXPECT_EQ(ifc_errors, 1u) << r.diags.ToString();
}

TEST(Ifc, AssertLabelChecks) {
  AnalysisResult ok = Analyze(R"(
    fn main() {
      #[label(alice)]
      let a = 1;
      assert_label(a, {alice, bob});
    }
  )");
  EXPECT_TRUE(ok.ifc_ok) << ok.diags.ToString();

  AnalysisResult bad = Analyze(R"(
    fn main() {
      #[label(alice, bob)]
      let a = 1;
      assert_label(a, {alice});
    }
  )");
  EXPECT_FALSE(bad.ifc_ok);
  EXPECT_TRUE(bad.diags.Contains(Phase::kIfc, "assert_label failed"));
}

TEST(Ifc, LabelsCanChangeAtRuntime) {
  // The paper: Rust "allow[s] for security labels to change at run-time" —
  // unlike security type systems, a variable's label is its *current*
  // contents' label. Overwriting with public data clears it (strong
  // update).
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let mut x = 5;
      x = 1;              // now public again (strong update, no aliasing)
      emit(stdout, x);
    }
  )");
  EXPECT_TRUE(r.ifc_ok) << r.diags.ToString();
}

TEST(Ifc, LoopFixpointTerminatesAndTaints) {
  AnalysisResult r = Analyze(R"(
    fn main() {
      #[label(secret)]
      let s = 1;
      let mut a = 0;
      let mut b = 0;
      let mut i = 0;
      while i < 10 {
        a = b;            // second iteration: b already carries secret
        b = s;
        i = i + 1;
      }
      emit(stdout, a);
    }
  )");
  EXPECT_FALSE(r.ifc_ok)
      << "needs a fixpoint: taint reaches `a` only on iteration 2";
}

// ---- Function calls: whole-program vs summaries --------------------------

constexpr std::string_view kInterproceduralLeak = R"(
  fn launder(x: int) -> int {
    let y = x + 0;
    return y;
  }
  fn main() {
    #[label(secret)]
    let s = 7;
    emit(stdout, launder(s));
  }
)";

TEST(Ifc, InterproceduralFlowWholeProgram) {
  AnalysisResult r = Analyze(kInterproceduralLeak, Mode::kWholeProgram);
  EXPECT_FALSE(r.ifc_ok);
}

TEST(Ifc, InterproceduralFlowSummaries) {
  AnalysisResult r = Analyze(kInterproceduralLeak, Mode::kSummaries);
  EXPECT_FALSE(r.ifc_ok);
}

TEST(Ifc, MutParamEffectThroughCallBothModes) {
  constexpr std::string_view src = R"(
    fn taint_it(v: &mut vec, s: int) {
      push(&mut v, s);
    }
    fn main() {
      #[label(secret)]
      let s = 1;
      let mut v = vec![];
      taint_it(&mut v, s);
      emit(stdout, v);
    }
  )";
  EXPECT_FALSE(Analyze(src, Mode::kWholeProgram).ifc_ok);
  EXPECT_FALSE(Analyze(src, Mode::kSummaries).ifc_ok);
}

TEST(Ifc, EmitInsideCalleeCheckedPerCallSite) {
  // The callee emits its parameter; one call site passes public data (fine),
  // the other secret (violation). Summary mode must localize the check.
  constexpr std::string_view src = R"(
    fn show(x: int) { emit(stdout, x); }
    fn main() {
      let p = 1;
      show(p);
      #[label(secret)]
      let s = 2;
      show(s);
    }
  )";
  AnalysisResult whole = Analyze(src, Mode::kWholeProgram);
  EXPECT_FALSE(whole.ifc_ok);
  AnalysisResult sums = Analyze(src, Mode::kSummaries);
  EXPECT_FALSE(sums.ifc_ok);
  std::size_t violations = 0;
  for (const auto& d : sums.diags.all()) {
    violations += d.phase == Phase::kIfc;
  }
  EXPECT_EQ(violations, 1u)
      << "only the secret call site violates: " << sums.diags.ToString();
}

TEST(Ifc, SummaryComputedOncePerFunction) {
  AnalysisResult r = Analyze(R"(
    fn helper(x: int) -> int { return x + 1; }
    fn main() {
      let a = helper(1);
      let b = helper(2);
      let c = helper(3);
      emit(stdout, a + b + c);
    }
  )",
                             Mode::kSummaries);
  EXPECT_TRUE(r.ifc_ok) << r.diags.ToString();
}

TEST(Ifc, RecursionRejectedBothModes) {
  constexpr std::string_view src = R"(
    fn rec(x: int) -> int { return rec(x - 1); }
    fn main() { emit(stdout, rec(5)); }
  )";
  AnalysisResult whole = Analyze(src, Mode::kWholeProgram);
  EXPECT_FALSE(whole.ifc_ok);
  EXPECT_TRUE(whole.diags.Contains(Phase::kIfc, "recursion"))
      << whole.diags.ToString();
  AnalysisResult sums = Analyze(src, Mode::kSummaries);
  EXPECT_TRUE(sums.diags.Contains(Phase::kIfc, "recursive"))
      << sums.diags.ToString();
}

TEST(Ifc, NestedCallsPropagateObligations) {
  // Two levels deep: main -> outer -> inner(emit). Summary mode must carry
  // inner's obligation through outer's summary to main's call site.
  constexpr std::string_view src = R"(
    fn inner(x: int) { emit(stdout, x); }
    fn outer(y: int) { inner(y + 1); }
    fn main() {
      #[label(secret)]
      let s = 1;
      outer(s);
    }
  )";
  EXPECT_FALSE(Analyze(src, Mode::kWholeProgram).ifc_ok);
  EXPECT_FALSE(Analyze(src, Mode::kSummaries).ifc_ok);
}

// ---- Mode agreement (differential property) ------------------------------

class IfcModeAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(IfcModeAgreement, BothModesAgreeOnVerdict) {
  AnalysisResult whole = AnalyzeSource(GetParam(), Mode::kWholeProgram);
  AnalysisResult sums = AnalyzeSource(GetParam(), Mode::kSummaries);
  ASSERT_TRUE(whole.ownership_ok) << whole.diags.ToString();
  EXPECT_EQ(whole.ifc_ok, sums.ifc_ok)
      << "whole-program and summary modes disagree:\nwhole: "
      << whole.diags.ToString() << "\nsums: " << sums.diags.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IfcModeAgreement,
    ::testing::Values(
        // clean: arithmetic only
        "fn f(x: int) -> int { return x * 2; }"
        "fn main() { emit(stdout, f(21)); }",
        // leak through return
        "fn f(x: int) -> int { return x; }"
        "fn main() { #[label(a)] let s = 1; emit(stdout, f(s)); }",
        // leak through &mut
        "fn f(v: &mut vec, x: int) { push(&mut v, x); }"
        "fn main() { #[label(a)] let s = 1; let mut v = vec![];"
        "  f(&mut v, s); emit(stdout, v); }",
        // clean: secret stays internal
        "fn f(x: int) -> int { return 0; }"
        "fn main() { #[label(a)] let s = 1; emit(stdout, f(s)); }",
        // implicit flow inside callee
        "fn f(x: int) -> int { let mut r = 0; if x > 0 { r = 1; } return r; }"
        "fn main() { #[label(a)] let s = 1; emit(stdout, f(s)); }",
        // callee emits under caller-secret pc
        "fn shout() { emit(stdout, 1); }"
        "fn main() { #[label(a)] let s = 1; if s > 0 { shout(); } }"));

// ---- Degenerate programs --------------------------------------------------

TEST(Ifc, MissingMainDiagnosed) {
  AnalysisResult r = AnalyzeSource("fn not_main() { }");
  EXPECT_FALSE(r.ifc_ok);
  EXPECT_TRUE(r.diags.Contains(Phase::kIfc, "no 'main'"));
}

TEST(Ifc, MainWithParamsDiagnosed) {
  AnalysisResult r = AnalyzeSource("fn main(x: int) { }");
  EXPECT_FALSE(r.ifc_ok);
  EXPECT_TRUE(r.diags.Contains(Phase::kIfc, "no parameters"));
}

}  // namespace
}  // namespace ifc
