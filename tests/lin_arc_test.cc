#include "src/lin/arc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/panic.h"

namespace lin {
namespace {

TEST(Arc, MakeCopyMove) {
  auto a = Arc<std::string>::Make("shared");
  Arc<std::string> b = a;
  Arc<std::string> c = std::move(b);
  EXPECT_EQ(*c, "shared");
  EXPECT_EQ(a.StrongCount(), 2u);
  EXPECT_FALSE(b.has_value());
  EXPECT_TRUE(a.SameObject(c));
}

TEST(Arc, DestroysPayloadOnce) {
  static std::atomic<int> live{0};
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  {
    auto a = Arc<Counted>::Make();
    auto b = a;
    auto w = ArcWeak<Counted>(a);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(ArcWeak, UpgradeLifecycle) {
  ArcWeak<int> w;
  {
    auto a = Arc<int>::Make(11);
    w = ArcWeak<int>(a);
    auto up = w.Upgrade();
    ASSERT_TRUE(up.has_value());
    EXPECT_EQ(*up, 11);
  }
  EXPECT_TRUE(w.Expired());
  EXPECT_FALSE(w.Upgrade().has_value());
}

TEST(Arc, GetMutOnlyWhenTrulyUnique) {
  auto a = Arc<int>::Make(1);
  EXPECT_NE(a.GetMutIfUnique(), nullptr);
  auto w = ArcWeak<int>(a);
  EXPECT_EQ(a.GetMutIfUnique(), nullptr) << "a weak handle blocks GetMut";
}

// Hammer copy/drop from many threads: counts must balance and the payload
// must be destroyed exactly once (ASAN/TSAN builds would catch UB here).
TEST(Arc, ConcurrentCloneDropStress) {
  static std::atomic<int> live{0};
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  {
    auto root = Arc<Counted>::Make();
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&root] {
        for (int i = 0; i < 20000; ++i) {
          Arc<Counted> local = root;
          ArcWeak<Counted> w(local);
          Arc<Counted> up = w.Upgrade();
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(root.StrongCount(), 1u);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

// Threads race weak-upgrades against the last strong drop; every successful
// upgrade must observe a live payload.
TEST(ArcWeak, UpgradeRacesLastDrop) {
  for (int round = 0; round < 200; ++round) {
    auto strong = Arc<std::uint64_t>::Make(0xfeedfaceULL);
    ArcWeak<std::uint64_t> weak(strong);
    std::thread dropper([&strong] { strong = Arc<std::uint64_t>(); });
    std::thread upgrader([&weak] {
      auto up = weak.Upgrade();
      if (up.has_value()) {
        EXPECT_EQ(*up, 0xfeedfaceULL);
      }
    });
    dropper.join();
    upgrader.join();
    EXPECT_TRUE(weak.Expired());
  }
}

TEST(Arc, MarkVisitedConcurrentExactlyOneWinner) {
  auto a = Arc<int>::Make(1);
  for (std::uint64_t epoch = 1; epoch <= 50; ++epoch) {
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&a, &winners, epoch] {
        if (a.MarkVisited(epoch)) {
          ++winners;
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(winners.load(), 1) << "epoch " << epoch;
  }
}

TEST(Arc, EmptyHandlePanicsOnAccess) {
  Arc<int> empty;
  EXPECT_THROW((void)*empty, util::PanicError);
  EXPECT_EQ(empty.StrongCount(), 0u);
}

}  // namespace
}  // namespace lin
