// The Figure-3 experiment as a test: checkpointing a firewall rule trie
// whose leaves share rules. The linear-mark checkpoint must keep exactly one
// copy per distinct rule and reconstruct the aliasing; the naive traversal
// must exhibit the duplication pathology the paper diagrams.
#include "src/ckpt/trie.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/lin/arc.h"
#include "src/lin/mutex.h"
#include "src/util/rng.h"

namespace ckpt {
namespace {

RulePtr MakeRule(std::uint64_t id, bool allow = true) {
  FwRule r;
  r.id = id;
  r.allow = allow;
  return RulePtr::Make(r);
}

TEST(RuleTrie, InsertAndLongestPrefixMatch) {
  RuleTrie trie;
  trie.Insert(0x0a000000, 8, MakeRule(1, /*allow=*/true));   // 10/8
  trie.Insert(0x0a010000, 16, MakeRule(2, /*allow=*/false)); // 10.1/16
  const FwRule* wide = trie.Lookup(0x0a020304);
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(wide->id, 1u);
  const FwRule* narrow = trie.Lookup(0x0a010304);
  ASSERT_NE(narrow, nullptr);
  EXPECT_EQ(narrow->id, 2u) << "longest prefix must win";
  EXPECT_EQ(trie.Lookup(0x0b000001), nullptr);
}

TEST(RuleTrie, ZeroLengthPrefixIsDefaultRule) {
  RuleTrie trie;
  trie.Insert(0, 0, MakeRule(99));
  const FwRule* hit = trie.Lookup(0xffffffff);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 99u);
}

TEST(RuleTrie, SharedRuleCountedOnce) {
  RuleTrie trie;
  RulePtr shared = MakeRule(7);
  trie.Insert(0x0a000000, 16, shared);
  trie.Insert(0x0b000000, 16, shared);
  trie.Insert(0x0c000000, 16, MakeRule(8));
  EXPECT_EQ(trie.RuleSlotCount(), 3u);
  EXPECT_EQ(trie.DistinctRuleCount(), 2u);
}

TEST(RuleTrie, HitCountOnUniqueRule) {
  RuleTrie trie;
  trie.Insert(0x0a000000, 8, MakeRule(1));
  (void)trie.Lookup(0x0a000001, /*count_hit=*/true);
  (void)trie.Lookup(0x0a000002, /*count_hit=*/true);
  const FwRule* r = trie.Lookup(0x0a000003);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->hit_count, 2u);
}

// Figure 3: checkpoint with sharing (a) vs naive duplication (b).
TEST(Figure3, LinearMarkKeepsOneCopyPerRule) {
  RuleTrie trie;
  RulePtr rule1 = MakeRule(1);
  RulePtr rule2 = MakeRule(2);
  // rule1 referenced from two leaves, as in the figure.
  trie.Insert(0x0a000000, 16, rule1);
  trie.Insert(0x0b000000, 16, rule1);
  trie.Insert(0x0c000000, 16, rule2);

  CheckpointStats stats;
  Snapshot snap = Checkpoint(trie, DedupMode::kLinearMark, &stats);
  EXPECT_EQ(stats.payload_copies, 2u) << "rule 1 once, rule 2 once";
  EXPECT_EQ(stats.back_refs, 1u) << "second leaf of rule 1";

  RuleTrie restored = Restore<RuleTrie>(snap);
  EXPECT_EQ(restored.RuleSlotCount(), 3u);
  EXPECT_EQ(restored.DistinctRuleCount(), 2u)
      << "restore must reconstruct Figure 3a, not 3b";
  EXPECT_TRUE(RuleTrie::Equivalent(trie, restored));
}

TEST(Figure3, NaiveTraversalCreatesRule1Prime) {
  RuleTrie trie;
  RulePtr rule1 = MakeRule(1);
  trie.Insert(0x0a000000, 16, rule1);
  trie.Insert(0x0b000000, 16, rule1);
  trie.Insert(0x0c000000, 16, MakeRule(2));

  CheckpointStats stats;
  Snapshot snap = Checkpoint(trie, DedupMode::kNone, &stats);
  EXPECT_EQ(stats.payload_copies, 3u)
      << "rule 1 copied twice (rule 1 and rule 1'), rule 2 once";

  RuleTrie restored = Restore<RuleTrie>(snap);
  EXPECT_EQ(restored.RuleSlotCount(), 3u);
  EXPECT_EQ(restored.DistinctRuleCount(), 3u)
      << "Figure 3b: the shared rule became two objects";
  EXPECT_FALSE(RuleTrie::Equivalent(trie, restored))
      << "sharing pattern differs, so the tries are not equivalent";
}

TEST(Figure3, AddressSetMatchesLinearSemanticsOnTries) {
  RuleTrie trie;
  RulePtr shared = MakeRule(5);
  for (std::uint32_t i = 0; i < 8; ++i) {
    trie.Insert(0x0a000000 + (i << 16), 16, shared);
  }
  CheckpointStats linear_stats, set_stats;
  Snapshot s1 = Checkpoint(trie, DedupMode::kLinearMark, &linear_stats);
  Snapshot s2 = Checkpoint(trie, DedupMode::kAddressSet, &set_stats);
  EXPECT_EQ(linear_stats.payload_copies, set_stats.payload_copies);
  EXPECT_EQ(linear_stats.back_refs, set_stats.back_refs);
  EXPECT_TRUE(RuleTrie::Equivalent(Restore<RuleTrie>(s1),
                                   Restore<RuleTrie>(s2)));
}

// Randomized property: round trip preserves equivalence for arbitrary
// tries with arbitrary sharing patterns.
class TrieRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieRoundTrip, EquivalentAfterRestore) {
  util::Rng rng(GetParam());
  RuleTrie trie;
  std::vector<RulePtr> pool;
  const std::size_t rules = 1 + rng.Below(20);
  for (std::size_t i = 0; i < rules; ++i) {
    pool.push_back(MakeRule(i, rng.Chance(0.5)));
  }
  const std::size_t inserts = 1 + rng.Below(100);
  for (std::size_t i = 0; i < inserts; ++i) {
    const auto prefix = rng.NextU32();
    const auto len = static_cast<std::uint8_t>(rng.Below(33));
    trie.Insert(prefix, len, pool[rng.Below(pool.size())]);
  }

  RuleTrie restored = Restore<RuleTrie>(Checkpoint(trie));
  EXPECT_TRUE(RuleTrie::Equivalent(trie, restored));
  // And lookups agree on random addresses.
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t addr = rng.NextU32();
    const FwRule* a = trie.Lookup(addr);
    const FwRule* b = restored.Lookup(addr);
    if (a == nullptr) {
      EXPECT_EQ(b, nullptr);
    } else {
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->id, b->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1234));

// E9: checkpoint while mutator threads update Arc<Mutex> shared state.
// Every per-object snapshot must be internally consistent.
TEST(ConcurrentCkpt, MutatorsDuringCheckpoint) {
  struct Stats {
    std::vector<int> values;  // invariant: values.size() == writes
    std::uint64_t writes = 0;
    LINSYS_CHECKPOINT_FIELDS(values, writes)
  };
  using SharedStats = lin::Arc<lin::Mutex<Stats>>;
  struct System {
    SharedStats a;
    SharedStats b;  // aliases `a` — both views of one object
    LINSYS_CHECKPOINT_FIELDS(a, b)
  };

  auto shared = SharedStats::Make(Stats{});
  System sys{shared, shared};

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto guard = shared.SharedMut().Lock();
      guard->values.push_back(i++);
      guard->writes++;
    }
  });

  for (int round = 0; round < 50; ++round) {
    Snapshot snap = Checkpoint(sys);
    System restored = Restore<System>(snap);
    EXPECT_TRUE(restored.a.SameObject(restored.b));
    auto guard = restored.a.SharedMut().Lock();
    EXPECT_EQ(guard->values.size(), guard->writes)
        << "lock-during-copy keeps each object internally consistent";
  }
  stop = true;
  mutator.join();
}

}  // namespace
}  // namespace ckpt
