#include "src/ifc/ril/parser.h"

#include <gtest/gtest.h>

#include "src/ifc/ril/lexer.h"

namespace ril {
namespace {

Program ParseOk(std::string_view src) {
  Diagnostics diags;
  Program p = Parser::Parse(src, &diags);
  EXPECT_FALSE(diags.HasErrors()) << diags.ToString();
  return p;
}

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  Diagnostics diags;
  Lexer lexer("fn let mut == != <= >= && || -> vec! #[label", &diags);
  auto tokens = lexer.Tokenize();
  ASSERT_FALSE(diags.HasErrors());
  ASSERT_EQ(tokens.size(), 13u);  // 12 tokens + EOF
  EXPECT_EQ(tokens[0].kind, TokKind::kFn);
  EXPECT_EQ(tokens[3].kind, TokKind::kEq);
  EXPECT_EQ(tokens[4].kind, TokKind::kNe);
  EXPECT_EQ(tokens[9].kind, TokKind::kArrow);
  EXPECT_EQ(tokens[10].kind, TokKind::kVecBang);
  EXPECT_EQ(tokens[11].kind, TokKind::kLabelAttr);
}

TEST(Lexer, TracksLineAndColumn) {
  Diagnostics diags;
  Lexer lexer("fn main\n  let x", &diags);
  auto tokens = lexer.Tokenize();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].col, 3);
}

TEST(Lexer, SkipsComments) {
  Diagnostics diags;
  Lexer lexer("let // the whole rest is a comment != &&\nmut", &diags);
  auto tokens = lexer.Tokenize();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokKind::kLet);
  EXPECT_EQ(tokens[1].kind, TokKind::kMut);
}

TEST(Lexer, ReportsStrayCharacters) {
  Diagnostics diags;
  Lexer lexer("let @ x", &diags);
  (void)lexer.Tokenize();
  EXPECT_TRUE(diags.Contains(Phase::kLex, "unexpected character"));
}

TEST(Parser, StructSinkAndFn) {
  Program p = ParseOk(R"(
    sink alice_out: {alice};
    struct Buffer { data: vec, count: int }
    fn main() { }
  )");
  ASSERT_EQ(p.structs.size(), 1u);
  EXPECT_EQ(p.structs[0].name, "Buffer");
  ASSERT_EQ(p.structs[0].fields.size(), 2u);
  EXPECT_EQ(p.structs[0].fields[0].second.base, BaseType::kVec);
  EXPECT_EQ(p.structs[0].fields[1].second.base, BaseType::kInt);
  ASSERT_EQ(p.sinks.size(), 1u);
  EXPECT_EQ(p.sinks[0].tags, std::vector<std::string>{"alice"});
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_NE(p.FindFunction("main"), nullptr);
}

TEST(Parser, FnSignatureWithRefsAndReturn) {
  Program p = ParseOk("fn f(a: &mut Buffer, b: &vec, c: int) -> vec { } "
                      "struct Buffer { data: vec }");
  const FnDecl* f = p.FindFunction("f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->params.size(), 3u);
  EXPECT_EQ(f->params[0].type.ref, RefKind::kMut);
  EXPECT_EQ(f->params[0].type.struct_name, "Buffer");
  EXPECT_EQ(f->params[1].type.ref, RefKind::kShared);
  EXPECT_EQ(f->params[2].type.ref, RefKind::kNone);
  EXPECT_EQ(f->return_type.base, BaseType::kVec);
}

TEST(Parser, LabelAttributeOnLet) {
  Program p = ParseOk(R"(
    fn main() {
      #[label(secret, alice)]
      let sec = vec![4, 5, 6];
    }
  )");
  const auto* let = p.functions[0].body.stmts[0]->As<LetStmt>();
  ASSERT_NE(let, nullptr);
  EXPECT_TRUE(let->has_label_attr);
  EXPECT_EQ(let->label_tags, (std::vector<std::string>{"secret", "alice"}));
}

TEST(Parser, PrecedenceShape) {
  Program p = ParseOk("fn main() { let x = 1 + 2 * 3 == 7 && true; }");
  const auto* let = p.functions[0].body.stmts[0]->As<LetStmt>();
  // Top node must be &&.
  const auto* andexpr = let->init->As<BinaryExpr>();
  ASSERT_NE(andexpr, nullptr);
  EXPECT_EQ(andexpr->op, TokKind::kAndAnd);
  const auto* eq = andexpr->lhs->As<BinaryExpr>();
  ASSERT_NE(eq, nullptr);
  EXPECT_EQ(eq->op, TokKind::kEq);
  const auto* plus = eq->lhs->As<BinaryExpr>();
  ASSERT_NE(plus, nullptr);
  EXPECT_EQ(plus->op, TokKind::kPlus);
  const auto* times = plus->rhs->As<BinaryExpr>();
  ASSERT_NE(times, nullptr);
  EXPECT_EQ(times->op, TokKind::kStar);
}

TEST(Parser, StructLiteralVsBlockDisambiguation) {
  Program p = ParseOk(R"(
    struct Point { x: int }
    fn main() {
      let cond = true;
      if cond { let y = 1; }
      let p = Point { x: 2 };
    }
  )");
  ASSERT_EQ(p.functions[0].body.stmts.size(), 3u);
  EXPECT_NE(p.functions[0].body.stmts[1]->As<IfStmt>(), nullptr);
  const auto* let = p.functions[0].body.stmts[2]->As<LetStmt>();
  ASSERT_NE(let, nullptr);
  EXPECT_TRUE(let->init->Is<StructLit>());
}

TEST(Parser, ElseIfChains) {
  Program p = ParseOk(R"(
    fn main() {
      let x = 1;
      if x == 1 { } else if x == 2 { } else { }
    }
  )");
  const auto* outer = p.functions[0].body.stmts[1]->As<IfStmt>();
  ASSERT_NE(outer, nullptr);
  ASSERT_TRUE(outer->else_block.has_value());
  const auto* inner = outer->else_block->stmts[0]->As<IfStmt>();
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->else_block.has_value());
}

TEST(Parser, EmitAndAssertStatements) {
  Program p = ParseOk(R"(
    sink log: {};
    fn main() {
      let v = vec![1];
      emit(log, v);
      assert_label(v, {alice, bob});
    }
  )");
  const auto* emit = p.functions[0].body.stmts[1]->As<EmitStmt>();
  ASSERT_NE(emit, nullptr);
  EXPECT_EQ(emit->sink, "log");
  const auto* assert_stmt =
      p.functions[0].body.stmts[2]->As<AssertLabelStmt>();
  ASSERT_NE(assert_stmt, nullptr);
  EXPECT_EQ(assert_stmt->tags, (std::vector<std::string>{"alice", "bob"}));
}

TEST(Parser, BorrowArguments) {
  Program p = ParseOk(R"(
    fn main() {
      let mut v = vec![1];
      push(&mut v, 2);
      let n = len(&v);
    }
  )");
  const auto* push_stmt = p.functions[0].body.stmts[1]->As<ExprStmt>();
  const auto* call = push_stmt->expr->As<CallExpr>();
  ASSERT_NE(call, nullptr);
  const auto* borrow = call->args[0]->As<BorrowExpr>();
  ASSERT_NE(borrow, nullptr);
  EXPECT_TRUE(borrow->is_mut);
}

TEST(Parser, ErrorsCarryPositions) {
  Diagnostics diags;
  (void)Parser::Parse("fn main() { let = 3; }", &diags);
  ASSERT_TRUE(diags.HasErrors());
  EXPECT_EQ(diags.all()[0].line, 1);
  EXPECT_GT(diags.all()[0].col, 1);
}

TEST(Parser, RecoversAtItemBoundary) {
  Diagnostics diags;
  Program p = Parser::Parse(
      "fn broken( { } fn good() { let x = 1; }", &diags);
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_NE(p.FindFunction("good"), nullptr)
      << "parser must recover and parse the next item";
}

TEST(Parser, FieldAccessBaseMustBeVariable) {
  Diagnostics diags;
  (void)Parser::Parse("fn f() { let x = g().field; }", &diags);
  EXPECT_TRUE(diags.Contains(Phase::kParse, "field access base"));
}

}  // namespace
}  // namespace ril
