// Robustness: the RIL front end must never crash, hang, or accept-and-UB on
// garbage — it terminates with diagnostics on arbitrary byte soup and
// arbitrary token soup (randomized, seeded, hundreds of cases).
#include <gtest/gtest.h>

#include <string>

#include "src/ifc/checker.h"
#include "src/util/rng.h"

namespace ril {
namespace {

class FuzzBytes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBytes, RandomBytesNeverCrash) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    const std::size_t len = rng.Below(200);
    for (std::size_t i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.Below(96) + 32));  // printable
    }
    ifc::AnalysisResult result = ifc::AnalyzeSource(soup);
    // Whatever happened, it terminated and produced a coherent verdict:
    // non-programs must not reach the IFC phase claiming success.
    if (result.AllOk()) {
      // It parsed as a valid program by chance (e.g. empty string is a
      // valid empty program missing main -> ifc fails, so AllOk means a
      // real main existed — astronomically unlikely but not wrong).
      SUCCEED();
    }
  }
}

TEST_P(FuzzBytes, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "fn",   "let",  "mut",    "struct", "sink", "if",    "else",
      "while", "return", "true", "false",  "vec!", "emit",  "assert_label",
      "{",    "}",    "(",      ")",      "[",    "]",     ",",
      ";",    ":",    "->",     ".",      "&",    "=",     "==",
      "!=",   "<",    "<=",     ">",      ">=",   "+",     "-",
      "*",    "/",    "%",      "&&",     "||",   "!",     "#[label",
      "x",    "y",    "main",   "int",    "vec",  "42",    "0",
  };
  util::Rng rng(GetParam() * 7919);
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    const std::size_t len = rng.Below(120);
    for (std::size_t i = 0; i < len; ++i) {
      soup += kTokens[rng.Below(std::size(kTokens))];
      soup += ' ';
    }
    (void)ifc::AnalyzeSource(soup);  // must terminate without crashing
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBytes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Nasty specific inputs that have bitten real parsers.
TEST(FuzzRegression, PathologicalInputs) {
  const char* cases[] = {
      "",
      ";",
      "fn",
      "fn main(",
      "fn main() {",
      "fn main() { let x = ; }",
      "fn main() { ((((((((((1)))))))))); }",
      "fn main() { let x = 1 + + 2; }",
      "struct S { }",
      "struct S { x: }",
      "sink s: {;",
      "#[label(",
      "fn main() { #[label(a)] }",
      "fn main() { vec![vec![vec![]]]; }",
      "fn main() { x.y.z.w; }",
      "fn main() { 1 = 2; }",
      "fn f(x: &mut &mut int) { }",
      "fn main() { emit(, 1); }",
      "fn main() { } fn main() { }",
      "// only a comment",
  };
  for (const char* src : cases) {
    (void)ifc::AnalyzeSource(src);  // terminate, no crash
  }
  SUCCEED();
}

// Deep nesting must not blow the stack unreasonably (parser recursion is
// proportional to nesting depth; 500 parens is far beyond real programs).
TEST(FuzzRegression, DeepNestingTerminates) {
  std::string deep = "fn main() { let x = ";
  for (int i = 0; i < 500; ++i) {
    deep += "(";
  }
  deep += "1";
  for (int i = 0; i < 500; ++i) {
    deep += ")";
  }
  deep += "; }";
  ifc::AnalysisResult result = ifc::AnalyzeSource(deep);
  EXPECT_TRUE(result.parse_ok);
}

}  // namespace
}  // namespace ril
