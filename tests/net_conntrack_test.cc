// Connection-tracking Maglev: the affinity property (established flows pin
// to their backend across membership changes) that plain consistent hashing
// only approximates, plus flow-state export/import.
#include "src/net/operators/conntrack.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/net/mempool.h"
#include "src/net/pktgen.h"

namespace net {
namespace {

std::vector<std::string> Names(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back("b" + std::to_string(i));
  }
  return names;
}

std::vector<std::uint32_t> Ips(int n) {
  std::vector<std::uint32_t> ips;
  for (int i = 0; i < n; ++i) {
    ips.push_back(0xc0a80100u + static_cast<std::uint32_t>(i));
  }
  return ips;
}

PacketBatch Traffic(Mempool& pool, std::uint64_t seed, std::size_t n) {
  PktSourceConfig cfg;
  cfg.flow_count = 128;
  cfg.seed = seed;
  PktSource src(&pool, cfg);
  PacketBatch batch(n);
  src.RxBurst(batch, n);
  return batch;
}

// Maps flow (by src ip/port) to assigned backend for each packet in batch.
std::map<std::pair<std::uint32_t, std::uint16_t>, std::uint32_t> Assignments(
    PacketBatch& batch) {
  std::map<std::pair<std::uint32_t, std::uint16_t>, std::uint32_t> out;
  for (PacketBuf& pkt : batch) {
    // dst was rewritten; flow identity survives in src ip/port.
    out[{NetToHost32(pkt.ipv4()->src_addr),
         NetToHost16(pkt.udp()->src_port)}] =
        NetToHost32(pkt.ipv4()->dst_addr);
  }
  return out;
}

TEST(ConnTrack, FirstPacketPopulatesFlowTable) {
  Mempool pool(512, 2048);
  MaglevConnTrack lb(Maglev(Names(4), 1009), Ips(4));
  PacketBatch out = lb.Process(Traffic(pool, 1, 256));
  EXPECT_GT(lb.flow_count(), 0u);
  EXPECT_EQ(lb.hits() + lb.misses(), 256u);
  EXPECT_EQ(lb.misses(), lb.flow_count());
}

TEST(ConnTrack, RepeatTrafficHitsTable) {
  Mempool pool(1024, 2048);
  MaglevConnTrack lb(Maglev(Names(4), 1009), Ips(4));
  (void)lb.Process(Traffic(pool, 1, 256));
  const std::uint64_t misses_after_warm = lb.misses();
  (void)lb.Process(Traffic(pool, 1, 256));  // same seed -> same flows
  EXPECT_EQ(lb.misses(), misses_after_warm)
      << "second pass must be all flow-table hits";
}

TEST(ConnTrack, AffinitySurvivesBackendRemoval) {
  Mempool pool(4096, 2048);
  MaglevConnTrack lb(Maglev(Names(5), 65537), Ips(5));

  PacketBatch first = lb.Process(Traffic(pool, 2, 512));
  auto before = Assignments(first);
  first.Clear();

  // Remove a backend that is NOT the pinned target of every flow; tracked
  // flows must keep their original backend, even those the hash table
  // would now send elsewhere.
  ASSERT_TRUE(lb.RemoveBackend("b4"));
  PacketBatch second = lb.Process(Traffic(pool, 2, 512));
  auto after = Assignments(second);

  ASSERT_EQ(before.size(), after.size());
  for (const auto& [flow, backend] : before) {
    EXPECT_EQ(after.at(flow), backend)
        << "tracked flow moved after membership change";
  }
}

TEST(ConnTrack, StatelessMaglevWouldMoveSomeFlows) {
  // Control experiment: without connection tracking, removal moves ~1/5 of
  // flows — proving the previous test is not vacuous.
  Maglev before(Names(5), 65537);
  Maglev after(Names(5), 65537);
  after.RemoveBackend("b4");
  std::size_t moved = 0;
  constexpr std::uint64_t kFlows = 4096;
  for (std::uint64_t h = 0; h < kFlows; ++h) {
    const std::uint64_t hash = h * 0x9e3779b97f4a7c15ULL;
    std::size_t a = before.Lookup(hash);
    std::size_t b = after.Lookup(hash);
    // Index shift for backends above the removed one.
    if (a == 4 || (a > 4 ? a - 1 : a) != b) {
      ++moved;
    }
  }
  EXPECT_GT(moved, kFlows / 10) << "removal must disrupt stateless flows";
}

TEST(ConnTrack, NewFlowsUseNewTable) {
  Mempool pool(4096, 2048);
  MaglevConnTrack lb(Maglev(Names(3), 1009), Ips(3));
  (void)lb.Process(Traffic(pool, 3, 128));
  lb.AddBackend("b3", Ips(4)[3]);
  // Fresh flows (different seed) should reach the new backend sometimes.
  PacketBatch fresh = lb.Process(Traffic(pool, 777, 512));
  std::set<std::uint32_t> seen;
  for (PacketBuf& pkt : fresh) {
    seen.insert(NetToHost32(pkt.ipv4()->dst_addr));
  }
  EXPECT_TRUE(seen.count(Ips(4)[3]))
      << "the added backend must attract new flows";
}

TEST(ConnTrack, OverflowDegradesGracefully) {
  Mempool pool(512, 2048);
  MaglevConnTrack lb(Maglev(Names(2), 1009), Ips(2), /*max_flows=*/8);
  PacketBatch out = lb.Process(Traffic(pool, 5, 256));
  EXPECT_EQ(out.size(), 256u) << "no drops on table overflow";
  EXPECT_LE(lb.flow_count(), 8u);
  EXPECT_GT(lb.table_overflow(), 0u);
}

TEST(ConnTrack, StateExportImportRoundTrip) {
  Mempool pool(1024, 2048);
  MaglevConnTrack primary(Maglev(Names(4), 1009), Ips(4));
  (void)primary.Process(Traffic(pool, 6, 256));

  MaglevConnTrack standby(Maglev(Names(4), 1009), Ips(4));
  standby.ImportState(primary.ExportState());
  EXPECT_EQ(standby.flow_count(), primary.flow_count());

  // Failover: the standby serves existing flows from the table (all hits).
  (void)standby.Process(Traffic(pool, 6, 256));
  EXPECT_EQ(standby.misses(), 0u);
}

}  // namespace
}  // namespace net
