// obs::Tracer — ring behavior (wraparound counted, never blocking),
// disarmed no-op guarantee, and well-formedness of the chrome://tracing
// export. Tests use Tracer::Global() (the macro target), resetting it
// around each test; tests in this binary therefore run serially, which is
// gtest's default.
#include <cstdint>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/util/cycles.h"

namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Disarm();
    obs::Tracer::Global().Reset();
  }
  void TearDown() override {
    obs::Tracer::Global().Disarm();
    obs::Tracer::Global().Reset();
  }
};

TEST_F(TracerTest, DisarmedRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  EXPECT_FALSE(obs::Tracer::ArmedFast());
  tracer.Instant("ignored");
  tracer.Span("ignored", util::CycleStart(), 10);
  LINSYS_TRACE_INSTANT("ignored.macro");
  { LINSYS_TRACE_SPAN("ignored.span"); }
  EXPECT_EQ(tracer.buffered_events(), 0u);
  EXPECT_EQ(tracer.total_events(), 0u);
}

TEST_F(TracerTest, ArmedCapturesSpansAndInstants) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  tracer.SetThreadName("test-main");
  LINSYS_TRACE_INSTANT("evt.instant");
  LINSYS_TRACE_INSTANT_ARG("evt.arged", 7);
  {
    LINSYS_TRACE_SPAN("evt.span");
  }
  EXPECT_EQ(tracer.buffered_events(), 3u);
  EXPECT_EQ(tracer.total_events(), 3u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST_F(TracerTest, RingWraparoundCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::Global();
  constexpr std::size_t kCapacity = 1 << 4;  // tiny ring: 16 events
  tracer.Arm(kCapacity);
  constexpr std::uint64_t kTotal = 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    tracer.InstantArg("wrap", i);
  }
  EXPECT_EQ(tracer.total_events(), kTotal);
  EXPECT_EQ(tracer.buffered_events(), kCapacity);
  EXPECT_EQ(tracer.dropped_events(), kTotal - kCapacity);
}

TEST_F(TracerTest, ArmRoundsCapacityUpToPowerOfTwo) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(10);  // rounds up to 16
  for (int i = 0; i < 16; ++i) {
    tracer.Instant("fill");
  }
  EXPECT_EQ(tracer.buffered_events(), 16u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST_F(TracerTest, InternedNamesSurviveAndDedupe) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  const char* a = tracer.Intern(std::string("fault:") + "site_a");
  const char* b = tracer.Intern("fault:site_a");
  EXPECT_EQ(a, b);  // deduped to the same stable pointer
  const char* c = tracer.Intern("fault:site_b");
  EXPECT_NE(a, c);
  tracer.Instant(a);
  EXPECT_EQ(tracer.buffered_events(), 1u);
}

TEST_F(TracerTest, MultiThreadedEventsLandInPerThreadRings) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  constexpr int kThreads = 3;
  constexpr int kEventsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.SetThreadName("worker" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        tracer.Instant("mt.event");
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(tracer.total_events(),
            static_cast<std::uint64_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST_F(TracerTest, ExportIsWellFormedChromeJson) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  tracer.SetThreadName("exporter");
  const std::uint64_t begin = util::CycleStart();
  LINSYS_TRACE_INSTANT_ARG("export.instant", 99);
  tracer.Span("export.span", begin, 1000);

  const std::string json = tracer.ExportChromeJson();
  // Structural skeleton.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The named events, their phases, and the thread-name metadata record.
  EXPECT_NE(json.find("\"name\":\"export.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"export.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":99}"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("exporter"), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy (the full check
  // lives in tools/trace_lint).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TracerTest, ResetDropsBufferedEvents) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  tracer.Instant("pre-reset");
  EXPECT_EQ(tracer.buffered_events(), 1u);
  tracer.Disarm();
  tracer.Reset();
  EXPECT_EQ(tracer.buffered_events(), 0u);
  EXPECT_EQ(tracer.total_events(), 0u);
}

TEST_F(TracerTest, FlowIdContextNestsAndRestores) {
  EXPECT_EQ(obs::CurrentFlowId(), 0u);
  const std::uint64_t a = obs::NextFlowId();
  const std::uint64_t b = obs::NextFlowId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  {
    obs::ScopedFlowId outer(a);
    EXPECT_EQ(obs::CurrentFlowId(), a);
    {
      obs::ScopedFlowId inner(b);
      EXPECT_EQ(obs::CurrentFlowId(), b);
    }
    EXPECT_EQ(obs::CurrentFlowId(), a);  // inner scope restored the outer id
  }
  EXPECT_EQ(obs::CurrentFlowId(), 0u);
  // Flow context is thread-local: another thread starts clean.
  std::uint64_t other_thread_flow = 99;
  {
    obs::ScopedFlowId outer(a);
    std::thread peek([&] { other_thread_flow = obs::CurrentFlowId(); });
    peek.join();
  }
  EXPECT_EQ(other_thread_flow, 0u);
}

TEST_F(TracerTest, AsyncEventsExportCatAndHexId) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  tracer.SetThreadName("async-exporter");
  tracer.AsyncBegin("flow.dispatch", "flow", 0x2aULL);
  tracer.AsyncInstant("flow.stage", "flow", 0x2aULL);
  tracer.AsyncEnd("flow.dispatch", "flow", 0x2aULL);

  const std::string json = tracer.ExportChromeJson();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos) << json;
  // Ids export as hex strings: doubles would mangle full 64-bit ids.
  EXPECT_NE(json.find("\"id\":\"0x2a\""), std::string::npos) << json;
}

TEST_F(TracerTest, AsyncSpanPairsBeginEndAndNoopsOnZeroId) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Arm(1 << 8);
  {
    obs::AsyncSpan span("flow.recover", "flow", 0x7ULL);
  }
  EXPECT_EQ(tracer.buffered_events(), 2u);  // one 'b' + one 'e'
  {
    obs::AsyncSpan span("flow.recover", "flow", 0);  // id 0: no-op
  }
  EXPECT_EQ(tracer.buffered_events(), 2u);
  // The macro picks up arm state at entry; disarmed means nothing is
  // emitted even if the tracer re-arms before scope exit.
  tracer.Disarm();
  tracer.Reset();
  {
    LINSYS_TRACE_ASYNC_SPAN("flow.skipped", "flow", 0x8ULL);
    tracer.Arm(1 << 8);
  }
  EXPECT_EQ(tracer.buffered_events(), 0u);  // span stayed silent end to end
}

TEST(TracerCalibration, CyclesPerMicrosecondIsSane) {
  const double rate = obs::CyclesPerMicrosecond();
  // Real TSCs run 1e2..1e5 cycles/µs; the no-rdtsc fallback returns exactly
  // 1000 (cycles are nanoseconds there).
  EXPECT_GT(rate, 1.0);
  EXPECT_LT(rate, 1e6);
}

}  // namespace
