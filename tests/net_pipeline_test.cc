// Pipeline tests: direct (NetBricks baseline) vs isolated (our SFI) — same
// packet-processing results, different fault behaviour.
#include "src/net/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/net/operators/firewall.h"
#include "src/net/operators/maglev_op.h"
#include "src/net/operators/nat.h"
#include "src/net/operators/null_filter.h"
#include "src/net/operators/ttl.h"
#include "src/net/pktgen.h"
#include "src/util/panic.h"

namespace net {
namespace {

PacketBatch MakeBatch(Mempool& pool, std::size_t n, std::uint8_t ttl = 64) {
  PacketBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    PacketBuf pkt = PacketBuf::Alloc(&pool, 64);
    BuildFrame(pkt,
               FiveTuple{0x0a000000u + static_cast<std::uint32_t>(i),
                         0xc0a80001u, static_cast<std::uint16_t>(1000 + i),
                         80, Ipv4Hdr::kProtoUdp},
               ttl);
    batch.Push(std::move(pkt));
  }
  return batch;
}

TEST(Pipeline, NullFiltersForwardEverything) {
  Mempool pool(64, 2048);
  Pipeline pipe;
  for (int i = 0; i < 5; ++i) {
    pipe.AddStage(std::make_unique<NullFilter>());
  }
  PacketBatch out = pipe.Run(MakeBatch(pool, 32));
  EXPECT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < pipe.length(); ++i) {
    auto& nf = static_cast<NullFilter&>(pipe.stage(i));
    EXPECT_EQ(nf.packets_seen(), 32u);
  }
}

TEST(Pipeline, TtlStageDropsExpired) {
  Mempool pool(64, 2048);
  Pipeline pipe;
  pipe.AddStage(std::make_unique<TtlDecrement>());
  PacketBatch out = pipe.Run(MakeBatch(pool, 8, /*ttl=*/1));
  EXPECT_EQ(out.size(), 0u) << "TTL 1 expires at the first router hop";
  out = pipe.Run(MakeBatch(pool, 8, /*ttl=*/2));
  EXPECT_EQ(out.size(), 8u);
  for (PacketBuf& pkt : out) {
    EXPECT_EQ(pkt.ipv4()->ttl, 1);
    EXPECT_EQ(InternetChecksum(pkt.ipv4(), sizeof(Ipv4Hdr)), 0)
        << "incremental checksum stays valid";
  }
}

TEST(Pipeline, FirewallFiltersBySourcePrefix) {
  Mempool pool(64, 2048);
  Pipeline pipe;
  FirewallRule block_low;
  block_low.src_prefix = 0x0a000000;
  block_low.src_prefix_len = 30;  // blocks .0 - .3
  block_low.allow = false;
  pipe.AddStage(std::make_unique<FirewallNf>(
      std::vector<FirewallRule>{block_low}, /*default_allow=*/true));
  PacketBatch out = pipe.Run(MakeBatch(pool, 8));
  EXPECT_EQ(out.size(), 4u);
}

TEST(Pipeline, NatRewritesSourceStably) {
  Mempool pool(64, 2048);
  Pipeline pipe;
  pipe.AddStage(std::make_unique<NatRewrite>(0x05050505));
  PacketBatch out = pipe.Run(MakeBatch(pool, 4));
  std::uint16_t first_port = 0;
  for (PacketBuf& pkt : out) {
    EXPECT_EQ(NetToHost32(pkt.ipv4()->src_addr), 0x05050505u);
    EXPECT_EQ(InternetChecksum(pkt.ipv4(), sizeof(Ipv4Hdr)), 0);
    if (first_port == 0) {
      first_port = NetToHost16(pkt.udp()->src_port);
    }
  }
  // Same flows again: NAT must reuse the same port mapping.
  PacketBatch again = pipe.Run(MakeBatch(pool, 4));
  EXPECT_EQ(NetToHost16(again[0].udp()->src_port), first_port);
}

TEST(Pipeline, MaglevStageSpreadsFlows) {
  Mempool pool(4096, 2048);
  Maglev table({"b0", "b1", "b2", "b3"}, 1009);
  std::vector<std::uint32_t> ips{0xc0a80101, 0xc0a80102, 0xc0a80103,
                                 0xc0a80104};
  Pipeline pipe;
  pipe.AddStage(std::make_unique<MaglevLb>(std::move(table), ips));

  PktSourceConfig cfg;
  cfg.flow_count = 512;
  cfg.seed = 3;
  PktSource src(&pool, cfg);
  PacketBatch batch;
  src.RxBurst(batch, 2000);
  PacketBatch out = pipe.Run(std::move(batch));

  auto& lb = static_cast<MaglevLb&>(pipe.stage(0));
  EXPECT_EQ(lb.processed(), 2000u);
  for (std::uint64_t count : lb.per_backend()) {
    EXPECT_NEAR(static_cast<double>(count), 500.0, 200.0)
        << "flows roughly balanced across backends";
  }
  for (PacketBuf& pkt : out) {
    const std::uint32_t dst = NetToHost32(pkt.ipv4()->dst_addr);
    EXPECT_TRUE(dst >= 0xc0a80101 && dst <= 0xc0a80104);
    EXPECT_EQ(InternetChecksum(pkt.ipv4(), sizeof(Ipv4Hdr)), 0);
  }
}

TEST(Pipeline, DirectPipelineHasNoFaultContainment) {
  Mempool pool(64, 2048);
  Pipeline pipe;
  pipe.AddStage(std::make_unique<NullFilter>(/*fault_every_n=*/1));
  EXPECT_THROW((void)pipe.Run(MakeBatch(pool, 4)), util::PanicError)
      << "NetBricks baseline: the panic reaches the caller";
  EXPECT_EQ(pool.in_use(), 0u) << "but RAII still reclaims the buffers";
}

TEST(IsolatedPipeline, ForwardsLikeDirect) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  for (int i = 0; i < 5; ++i) {
    pipe.AddStage("null-" + std::to_string(i),
                  [] { return std::make_unique<NullFilter>(); });
  }
  auto out = pipe.Run(MakeBatch(pool, 32));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 32u);
  EXPECT_EQ(mgr.domain_count(), 5u);
}

TEST(IsolatedPipeline, MixedRealNfPipelineMatchesDirect) {
  Mempool pool(256, 2048);
  // Direct.
  Pipeline direct;
  direct.AddStage(std::make_unique<TtlDecrement>());
  direct.AddStage(std::make_unique<NatRewrite>(0x05050505));
  // Isolated, same stages.
  sfi::DomainManager mgr;
  IsolatedPipeline isolated(&mgr);
  isolated.AddStage("ttl", [] { return std::make_unique<TtlDecrement>(); });
  isolated.AddStage("nat",
                    [] { return std::make_unique<NatRewrite>(0x05050505); });

  PacketBatch direct_out = direct.Run(MakeBatch(pool, 16));
  auto isolated_out = isolated.Run(MakeBatch(pool, 16));
  ASSERT_TRUE(isolated_out.ok());
  ASSERT_EQ(isolated_out.value().size(), direct_out.size());
  for (std::size_t i = 0; i < direct_out.size(); ++i) {
    EXPECT_EQ(direct_out[i].Tuple(), isolated_out.value()[i].Tuple())
        << "isolation must not change processing results";
  }
}

TEST(IsolatedPipeline, FaultIsContainedAndReported) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  pipe.AddStage("ok", [] { return std::make_unique<NullFilter>(); });
  pipe.AddStage("faulty",
                [] { return std::make_unique<NullFilter>(/*fault=*/1); });
  pipe.AddStage("after", [] { return std::make_unique<NullFilter>(); });

  auto result = pipe.Run(MakeBatch(pool, 8));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), sfi::CallError::kFault);
  EXPECT_EQ(pool.in_use(), 0u) << "in-flight batch reclaimed during unwind";
  EXPECT_EQ(pipe.domain(0).state(), sfi::DomainState::kRunning);
  EXPECT_EQ(pipe.domain(1).state(), sfi::DomainState::kFailed)
      << "only the faulty stage's domain fails";
  EXPECT_EQ(pipe.domain(2).state(), sfi::DomainState::kRunning);
}

TEST(IsolatedPipeline, RecoveryMakesPipelineUsableAgain) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  pipe.AddStage("faulty", [] {
    return std::make_unique<NullFilter>(/*fault_every_n=*/3);
  });

  int faults = 0;
  int delivered = 0;
  for (int round = 0; round < 20; ++round) {
    auto result = pipe.Run(MakeBatch(pool, 4));
    if (result.ok()) {
      ++delivered;
    } else {
      ++faults;
      EXPECT_EQ(pipe.RecoverFailedStages(), 1u);
    }
  }
  EXPECT_GT(faults, 0);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(delivered + faults, 20);
  // After the final recovery the pipeline still works.
  auto final_run = pipe.Run(MakeBatch(pool, 4));
  if (!final_run.ok()) {
    pipe.RecoverFailedStages();
    final_run = pipe.Run(MakeBatch(pool, 4));
  }
  EXPECT_TRUE(final_run.ok());
}

TEST(IsolatedPipeline, StatsCountInvocations) {
  Mempool pool(64, 2048);
  sfi::DomainManager mgr;
  IsolatedPipeline pipe(&mgr);
  pipe.AddStage("nf", [] { return std::make_unique<NullFilter>(); });
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(pipe.Run(MakeBatch(pool, 2)).ok());
  }
  EXPECT_EQ(mgr.AggregateStats().calls_ok, 7u);
}

}  // namespace
}  // namespace net
